package anomaly

import (
	"time"

	"canalmesh/internal/gateway"
	"canalmesh/internal/scaling"
	"canalmesh/internal/sim"
)

// ActionRecord is one intervention the monitor performed.
type ActionRecord struct {
	At      time.Duration
	Service uint64
	Backend string
	Classification
}

// Monitor drives the full §4.2 loop: every second it samples each backend's
// water level and its top service's traffic/session indicators, classifies
// the situation, and executes the recommended intervention — precise
// scaling for normal growth, sandbox migration for attack signatures,
// gateway throttling when the tenant's own cluster is drowning.
type Monitor struct {
	sim        *sim.Sim
	g          *gateway.Gateway
	planner    *scaling.Planner
	thresholds Thresholds

	// Window is the lookback for growth computations.
	Window time.Duration
	// Cooldown suppresses repeated interventions on the same service.
	Cooldown time.Duration
	// SessionCapacity is the per-backend session budget used for the
	// session-utilization signal.
	SessionCapacity int
	// UserClusterUtil, when non-nil, reports a tenant's own cluster
	// utilization (the tenant-level indicator); nil means unknown (-1).
	UserClusterUtil func(tenant string) float64
	// ScalingOpsWindow counts recent scaling operations per service for
	// the frequent-scaling indicator.
	ScalingOpsWindow time.Duration

	baseline map[uint64]float64 // EWMA of session counts per service
	lastAct  map[uint64]time.Duration
	actions  []ActionRecord
	running  bool
}

// NewMonitor builds a monitor over a gateway and its scaling planner.
func NewMonitor(s *sim.Sim, g *gateway.Gateway, planner *scaling.Planner, th Thresholds) *Monitor {
	return &Monitor{
		sim: s, g: g, planner: planner, thresholds: th,
		Window:           20 * time.Second,
		Cooldown:         25 * time.Second,
		SessionCapacity:  100_000,
		ScalingOpsWindow: time.Hour,
		baseline:         make(map[uint64]float64),
		lastAct:          make(map[uint64]time.Duration),
	}
}

// Actions returns the interventions performed so far.
func (m *Monitor) Actions() []ActionRecord { return append([]ActionRecord(nil), m.actions...) }

// Start schedules the monitoring loop until stop returns true.
func (m *Monitor) Start(stop func() bool) {
	if m.running {
		return
	}
	m.running = true
	m.sim.Every(time.Second, func() bool {
		if stop != nil && stop() {
			m.running = false
			return false
		}
		m.tick()
		return true
	})
}

// tick inspects every backend once.
func (m *Monitor) tick() {
	now := m.sim.Now()
	for _, b := range m.g.Backends() {
		if !b.Alive() {
			continue
		}
		svcID, ok := m.topService(b, now)
		if !ok {
			continue
		}
		svc := m.g.Service(svcID)
		if svc == nil || svc.Sandboxed {
			continue
		}
		// Update the session baseline lazily (EWMA over calm periods).
		base := m.baseline[svcID]
		if base == 0 {
			base = float64(svc.Sessions)
			if base == 0 {
				base = 1
			}
		}
		sig := Signals{
			WaterLevel:         b.WaterLevel(now - time.Second),
			RPSGrowth:          m.rpsGrowth(b, svcID, now),
			SessionGrowth:      float64(svc.Sessions) / base,
			SessionUtilization: float64(svc.Sessions) / float64(m.SessionCapacity),
			ScalingOpsRecent:   m.recentScalingOps(svcID, now),
			UserClusterUtil:    -1,
		}
		if m.UserClusterUtil != nil {
			sig.UserClusterUtil = m.UserClusterUtil(svc.Tenant)
		}
		c := Classify(sig, m.thresholds)
		if c.Action == ActionNone {
			// Learn the baseline only while session counts look ordinary;
			// chasing a surge with the EWMA would blind the attack
			// detector to its own signal.
			if sig.SessionGrowth < 1.5 {
				m.baseline[svcID] = 0.9*base + 0.1*float64(svc.Sessions)
			} else {
				m.baseline[svcID] = base
			}
			continue
		}
		if last, acted := m.lastAct[svcID]; acted && now-last < m.Cooldown {
			continue
		}
		m.lastAct[svcID] = now
		m.execute(c, svc, b, now)
	}
}

// execute performs the classified intervention.
func (m *Monitor) execute(c Classification, svc *gateway.ServiceState, b *gateway.Backend, now time.Duration) {
	switch c.Action {
	case ActionScale:
		if m.planner != nil {
			_, _ = m.planner.ScaleService(svc.ID, b, now, nil)
		}
	case ActionLossyMigrate:
		_ = m.g.MigrateToSandbox(svc.ID, gateway.Lossy, nil)
	case ActionLosslessMigrate:
		_ = m.g.MigrateToSandbox(svc.ID, gateway.Lossless, nil)
	case ActionThrottle:
		// Throttle to half the current observed RPS; operators relax it as
		// the tenant's own scaling catches up (§6.2 Case #3).
		rps := m.currentRPS(b, svc.ID, now)
		if rps < 10 {
			rps = 10
		}
		_ = m.g.Throttle(svc.ID, rps/2, rps/2)
	}
	m.actions = append(m.actions, ActionRecord{At: now, Service: svc.ID, Backend: b.ID, Classification: c})
}

// topService returns the backend's highest-RPS service over the window.
func (m *Monitor) topService(b *gateway.Backend, now time.Duration) (uint64, bool) {
	var best uint64
	bestSum := -1.0
	for id, series := range b.RPSSeries {
		var sum float64
		for _, v := range series.Values(now-m.Window, now+time.Nanosecond) {
			sum += v
		}
		if sum > bestSum {
			best, bestSum = id, sum
		}
	}
	return best, bestSum > 0
}

// rpsGrowth computes recent-vs-older mean RPS for a service on a backend.
func (m *Monitor) rpsGrowth(b *gateway.Backend, svcID uint64, now time.Duration) float64 {
	series := b.RPSSeries[svcID]
	if series == nil {
		return 1
	}
	return GrowthRatio(series.Values(now-m.Window, now+time.Nanosecond))
}

// currentRPS returns the latest 1-second sample.
func (m *Monitor) currentRPS(b *gateway.Backend, svcID uint64, now time.Duration) float64 {
	series := b.RPSSeries[svcID]
	if series == nil {
		return 0
	}
	return series.Last().V
}

// recentScalingOps counts the planner's operations for a service inside the
// frequent-scaling window.
func (m *Monitor) recentScalingOps(svcID uint64, now time.Duration) int {
	if m.planner == nil {
		return 0
	}
	n := 0
	for _, e := range m.planner.Events() {
		if e.Service == svcID && now-e.ExecuteAt <= m.ScalingOpsWindow {
			n++
		}
	}
	return n
}
