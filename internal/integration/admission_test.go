package integration

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/cloud"
	"canalmesh/internal/gateway"
	"canalmesh/internal/l7"
	"canalmesh/internal/netmodel"
	"canalmesh/internal/sim"
	"canalmesh/internal/telemetry"
	"canalmesh/internal/workload"
)

// TestFlashCrowdAdmissionEndToEnd drives the whole stack — gateway shard,
// per-replica WDRR+CoDel disciplines, per-service AIMD limiters, telemetry
// sampling — through a single-tenant flash crowd and checks the paper's
// pre-migration story: while anomaly detection would still be gathering
// evidence (tens of seconds), the admission layer already confines the blast
// radius to the aggressor tenant.
func TestFlashCrowdAdmissionEndToEnd(t *testing.T) {
	const (
		end        = 24 * time.Second
		crowdStart = 6 * time.Second
		crowdRamp  = 2 * time.Second
		crowdHold  = 8 * time.Second
	)
	s := sim.New(99)
	region := cloud.NewRegion(s, "r1", "az1")
	g := gateway.New(gateway.Config{Sim: s, Costs: netmodel.Default(), Engine: l7.NewEngine(99), ShardSize: 2, Seed: 99})
	for i := 0; i < 2; i++ {
		if _, err := g.AddBackend(region.AZ("az1"), 1, 1, false); err != nil {
			t.Fatal(err)
		}
	}
	g.EnableAdmission(admission.Config{
		Quantum:  250 * time.Microsecond,
		Target:   time.Millisecond,
		Interval: 10 * time.Millisecond,
		Limiter:  admission.LimiterConfig{MinLimit: 2, Tolerance: 3},
	})
	g.StartSampling(func() bool { return s.Now() > end })

	tenants := []string{"aggressor", "victim1", "victim2"}
	svcs := make([]*gateway.ServiceState, len(tenants))
	for i, tenant := range tenants {
		st, err := g.RegisterService(tenant, "api", uint32(300+i),
			netip.AddrFrom4([4]byte{192, 168, 60, byte(i + 1)}), 80, false,
			l7.ServiceConfig{DefaultSubset: "v1"})
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = st
	}

	flashFrom, flashTo := crowdStart+crowdRamp, crowdStart+crowdRamp+crowdHold
	base := &telemetry.Sample{}
	flash := &telemetry.Sample{}
	statuses := map[string]map[int]int{}
	flow := 0
	drive := func(idx int, rate workload.RateFunc) {
		tenant := tenants[idx]
		statuses[tenant] = map[int]int{}
		workload.OpenLoop(s, rate, time.Millisecond, end, func() {
			flow++
			at := s.Now()
			key := cloud.SessionKey{SrcIP: "10.9.0.1", SrcPort: uint16(flow%60000 + 1), DstIP: fmt.Sprint(idx), DstPort: 80, Proto: 6}
			req := &l7.Request{Tenant: tenant, SourceService: "client", Method: "GET", Path: "/", BodyBytes: 1024}
			g.Dispatch(svcs[idx].ID, "az1", key, req, 1, func(lat time.Duration, status int) {
				statuses[tenant][status]++
				if idx > 0 && status == l7.StatusOK {
					switch {
					case at < crowdStart:
						base.ObserveDuration(lat)
					case at >= flashFrom && at < flashTo:
						flash.ObserveDuration(lat)
					}
				}
			})
		})
	}
	drive(0, workload.FlashCrowd(2000, 10000, crowdStart, crowdRamp, crowdHold))
	drive(1, workload.Constant(800))
	drive(2, workload.Constant(800))
	s.Run()

	baseP99, flashP99 := base.PercentileDuration(99), flash.PercentileDuration(99)
	if baseP99 <= 0 || flash.Count() == 0 {
		t.Fatalf("missing victim samples: base %v (%d), flash %d", baseP99, base.Count(), flash.Count())
	}
	if blowup := float64(flashP99) / float64(baseP99); blowup > 2 {
		t.Fatalf("victim flash p99 %v is %.2fx baseline %v, want <=2x under admission", flashP99, blowup, baseP99)
	}
	// The aggressor's excess was shed as typed 429s, not silently queued.
	if statuses["aggressor"][l7.StatusTooManyRequests] == 0 {
		t.Fatal("5x flash crowd produced no 429s for the aggressor")
	}
	m := g.AdmissionMetrics()
	if m == nil || m.ShedTotal() == 0 {
		t.Fatal("admission metrics recorded no sheds")
	}
	if fi := m.FairnessIndex(); fi <= 0 || fi > 1 {
		t.Fatalf("fairness index = %v", fi)
	}
	// The shed-rate series saw the crowd: some sampled second during the
	// flash window has a non-zero shed rate.
	series := g.ShedSeries()
	if series == nil {
		t.Fatal("no shed series with admission enabled")
	}
	sawShed := false
	for _, pt := range series.Points() {
		if pt.T >= crowdStart && pt.T < flashTo && pt.V > 0 {
			sawShed = true
			break
		}
	}
	if !sawShed {
		t.Error("shed series flat through the flash crowd")
	}
	// Victims keep nearly all their offered load end to end.
	for _, tenant := range tenants[1:] {
		ok := statuses[tenant][l7.StatusOK]
		total := 0
		for _, n := range statuses[tenant] {
			total += n
		}
		if total == 0 || float64(ok)/float64(total) < 0.95 {
			t.Errorf("%s served %d/%d; admission should protect victims (statuses %v)", tenant, ok, total, statuses[tenant])
		}
	}
}
