// Package integration drives full cross-package scenarios: the byte-level
// data path (mTLS handshake via key server -> AES-GCM record -> VXLAN
// session-aggregating tunnel -> vSwitch service-ID mapping -> Beamer replica
// selection -> L7 routing), and cloud-scale lifecycles combining the
// gateway, monitor, planner, and failure injection.
package integration

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"canalmesh/internal/beamer"
	"canalmesh/internal/cloud"
	"canalmesh/internal/gateway"
	"canalmesh/internal/keyserver"
	"canalmesh/internal/l7"
	"canalmesh/internal/meshcrypto"
	"canalmesh/internal/netmodel"
	"canalmesh/internal/overlay"
	"canalmesh/internal/scaling"
	"canalmesh/internal/sim"
	"canalmesh/internal/tunnel"
	"canalmesh/internal/workload"
)

// TestPacketPathEndToEnd walks one tenant request through every byte-level
// mechanism of the data plane in order.
func TestPacketPathEndToEnd(t *testing.T) {
	// --- Control plane setup: PKI, key server, channels. ---
	ca, err := meshcrypto.NewCA("tenant1-ca")
	if err != nil {
		t.Fatal(err)
	}
	nodeID, err := ca.IssueIdentity("spiffe://tenant1/sa/node-proxy")
	if err != nil {
		t.Fatal(err)
	}
	gwID, err := ca.IssueIdentity("spiffe://tenant1/sa/gateway")
	if err != nil {
		t.Fatal(err)
	}
	ks, err := keyserver.NewServer("ks-az1")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []*meshcrypto.Identity{nodeID, gwID} {
		if err := ks.Entrust(id); err != nil {
			t.Fatal(err)
		}
	}
	chN, err := ks.Establish("node-proxy-1")
	if err != nil {
		t.Fatal(err)
	}
	chG, err := ks.Establish("gw-replica-1")
	if err != nil {
		t.Fatal(err)
	}

	// --- Step 1: mTLS handshake, asymmetric phase on the key server. ---
	hello, off, err := meshcrypto.Offer(nodeID.ID, nodeID.CertDER, ca, keyserver.NewRemoteKeyOps("node-proxy-1", chN, ks))
	if err != nil {
		t.Fatal(err)
	}
	sh, acc, err := meshcrypto.Accept(gwID.ID, gwID.CertDER, ca, keyserver.NewRemoteKeyOps("gw-replica-1", chG, ks), hello)
	if err != nil {
		t.Fatal(err)
	}
	nodeSess, fin, _, err := off.Finish(sh)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.VerifyFinished(fin); err != nil {
		t.Fatal(err)
	}
	gwSess := acc.Session

	// --- Step 2: the on-node proxy encrypts the app's HTTP request. ---
	httpReq := []byte("GET /orders?id=7 HTTP/1.1\r\nHost: web.tenant1\r\n\r\n")
	record := nodeSess.Seal(httpReq)
	if bytes.Contains(record, []byte("orders")) {
		t.Fatal("record must not leak plaintext")
	}

	// --- Step 3: VXLAN encapsulation + session-aggregating tunnel. ---
	routerIP := netip.MustParseAddr("100.64.0.1")
	replicaIP := netip.MustParseAddr("100.64.1.7")
	agg, err := tunnel.NewAggregator(routerIP, 100, 40, 9000)
	if err != nil {
		t.Fatal(err)
	}
	inner := overlay.Inner{
		Src:     netip.MustParseAddr("192.168.0.5"),
		Dst:     netip.MustParseAddr("192.168.0.10"),
		SrcPort: 40001, DstPort: 80, Proto: 6,
	}
	wire, err := agg.Encapsulate(inner, record)
	if err != nil {
		t.Fatal(err)
	}

	// The underlying server tracks only the tunnel's outer 5-tuple.
	flowKey := cloud.SessionKey{SrcIP: inner.Src.String(), SrcPort: inner.SrcPort, DstIP: inner.Dst.String(), DstPort: inner.DstPort, Proto: 6}
	outer := agg.OuterKey(flowKey, replicaIP)
	serverSessions := cloud.NewSessionTable(100)
	if err := serverSessions.Add(outer); err != nil {
		t.Fatal(err)
	}
	// 10k inner sessions still fit the 100-entry table via aggregation.
	for p := uint16(1); p <= 10000 && p != 0; p++ {
		k := flowKey
		k.SrcPort = p
		if err := serverSessions.Add(agg.OuterKey(k, replicaIP)); err != nil {
			t.Fatalf("aggregated sessions overflowed: %v", err)
		}
	}
	if serverSessions.Len() > 40 {
		t.Errorf("outer sessions = %d, want <= tunnel count", serverSessions.Len())
	}

	// --- Step 4: disaggregation at the replica, per-core spreading. ---
	disagg, err := tunnel.NewDisaggregator(8)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, core, err := disagg.Receive(wire, agg.TunnelPort(flowKey))
	if err != nil {
		t.Fatal(err)
	}
	if core < 0 || core >= 8 {
		t.Fatalf("core = %d", core)
	}

	// --- Step 5: vSwitch maps VNI+destination to the global service ID. ---
	vsw := overlay.NewVSwitch()
	svcID := vsw.Register(overlay.ServiceKey{VNI: 100, DstIP: inner.Dst, DstPort: 80})
	vmPkt, err := vsw.Ingress(wire)
	if err != nil {
		t.Fatal(err)
	}
	shim, gotInner, gotPayload, err := overlay.ParseVMPacket(vmPkt)
	if err != nil {
		t.Fatal(err)
	}
	if shim.ServiceID != svcID || gotInner != inner || !bytes.Equal(gotPayload, payload) {
		t.Fatal("vSwitch mangled the packet")
	}

	// --- Step 6: the redirector (Beamer) picks the serving replica. ---
	bm, err := beamer.New(fmt.Sprint(svcID), []string{"replica-1", "replica-2", "replica-3"}, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bm.Process(flowKey, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedBy == "" {
		t.Fatal("no serving replica")
	}

	// --- Step 7: the replica decrypts and routes at L7. ---
	plain, err := gwSess.Open(gotPayload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, httpReq) {
		t.Fatal("decrypted request corrupted")
	}
	line := strings.SplitN(string(plain), "\r\n", 2)[0]
	parts := strings.Split(line, " ")
	engine := l7.NewEngine(1)
	if err := engine.Configure(l7.ServiceConfig{
		Service:       fmt.Sprint(svcID),
		DefaultSubset: "v1",
		Rules: []l7.Rule{{
			Name:   "orders",
			Match:  l7.RouteMatch{Path: l7.Prefix("/orders")},
			Splits: []l7.Split{{Subset: "orders-v2", Weight: 1}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := engine.Route(0, &l7.Request{Service: fmt.Sprint(svcID), Method: parts[0], Path: strings.SplitN(parts[1], "?", 2)[0]})
	if err != nil {
		t.Fatal(err)
	}
	if d.Subset != "orders-v2" || d.Rule != "orders" {
		t.Fatalf("decision = %+v", d)
	}

	// --- Step 8: the response survives the reverse crypto path. ---
	resp := gwSess.Seal([]byte("HTTP/1.1 200 OK\r\n\r\n{\"order\":7}"))
	back, err := nodeSess.Open(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(back, []byte("200 OK")) {
		t.Fatal("response corrupted")
	}
}

// TestCloudLifecycleEndToEnd runs a region with several tenant services
// through load growth, an AZ outage, and recovery, with sampling and the
// scaling planner active: no service becomes fully unavailable, and the
// planner expands capacity for the hot one.
func TestCloudLifecycleEndToEnd(t *testing.T) {
	s := sim.New(77)
	region := cloud.NewRegion(s, "r1", "az1", "az2")
	g := gateway.New(gateway.Config{Sim: s, Costs: netmodel.Default(), Engine: l7.NewEngine(77), ShardSize: 3, Seed: 77})
	for i := 0; i < 8; i++ {
		az := region.AZ("az1")
		if i%2 == 1 {
			az = region.AZ("az2")
		}
		if _, err := g.AddBackend(az, 1, 2, false); err != nil {
			t.Fatal(err)
		}
	}
	var svcs []*gateway.ServiceState
	for i := 0; i < 5; i++ {
		st, err := g.RegisterService("t1", fmt.Sprintf("svc-%d", i), 100,
			netip.AddrFrom4([4]byte{192, 168, 1, byte(i + 1)}), 80, false, l7.ServiceConfig{DefaultSubset: "v1"})
		if err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, st)
	}
	end := 120 * time.Second
	g.StartSampling(func() bool { return s.Now() > end+5*time.Second })
	planner := scaling.NewPlanner(s, g, region, scaling.DefaultOptions())

	statuses := map[int]int{}
	drive := func(svc *gateway.ServiceState, rate workload.RateFunc) {
		i := int(svc.ID) << 20
		workload.OpenLoop(s, rate, 10*time.Millisecond, end, func() {
			i++
			flow := cloud.SessionKey{SrcIP: "10.0.0.3", SrcPort: uint16(i%60000 + 1), DstIP: "10.1.0.1", DstPort: 80, Proto: 6}
			g.Dispatch(svc.ID, "az1", flow, &l7.Request{Method: "GET", Path: "/", BodyBytes: 1024}, 1, func(_ time.Duration, status int) {
				statuses[status]++
			})
		})
	}
	drive(svcs[0], workload.Ramp(500, 14000, 20*time.Second, 30*time.Second)) // the hot one
	for _, svc := range svcs[1:] {
		drive(svc, workload.Constant(200))
	}

	// Backend-level alerting on the hot service's az1-local backend (the
	// dispatch AZ, where its traffic actually lands).
	var hot *gateway.Backend
	for _, b := range svcs[0].Backends {
		if b.AZ == "az1" {
			hot = b
			break
		}
	}
	if hot == nil {
		t.Fatal("hot service has no az1 backend in this seed")
	}
	var lastOp time.Duration = -time.Hour
	s.Every(time.Second, func() bool {
		now := s.Now()
		if now > end {
			return false
		}
		if hot.WaterLevel(now-time.Second) >= 0.7 && now-lastOp > 30*time.Second {
			lastOp = now
			if _, err := planner.HandleAlert(hot, now, nil); err != nil && err != scaling.ErrNoRootCause {
				t.Errorf("HandleAlert: %v", err)
			}
		}
		return true
	})

	// AZ1 outage at t=60s, recovery at t=80s.
	s.At(60*time.Second, func() { region.AZ("az1").FailAZ() })
	s.At(80*time.Second, func() { region.AZ("az1").RecoverAZ() })

	// During the outage, every service must still resolve (cross-AZ).
	s.At(70*time.Second, func() {
		for _, svc := range svcs {
			b, err := g.ResolveBackend(svc.ID, "az1", cloud.SessionKey{SrcIP: "x", SrcPort: 9, DstIP: "y", DstPort: 80, Proto: 6})
			if err != nil {
				t.Errorf("service %s unavailable during AZ outage: %v", svc.FullName(), err)
				continue
			}
			if b.AZ != "az2" {
				t.Errorf("service %s resolved to failed AZ", svc.FullName())
			}
		}
	})
	s.Run()

	if statuses[200] == 0 {
		t.Fatal("no successful dispatches")
	}
	okShare := float64(statuses[200]) / float64(statuses[200]+statuses[503])
	if okShare < 0.95 {
		t.Errorf("success share %.3f; hierarchical failover should keep most traffic flowing (statuses %v)", okShare, statuses)
	}
	if len(planner.Events()) == 0 {
		t.Error("planner should have scaled the hot service")
	}
	for _, ev := range planner.Events() {
		if ev.Service != svcs[0].ID {
			t.Errorf("scaled wrong service %d (hot is %d)", ev.Service, svcs[0].ID)
		}
	}
}

// TestMultiTenantIsolationEndToEnd verifies that a tenant's sandboxing and
// throttling leave another tenant's identically-addressed service untouched.
func TestMultiTenantIsolationEndToEnd(t *testing.T) {
	s := sim.New(5)
	region := cloud.NewRegion(s, "r1", "az1")
	g := gateway.New(gateway.Config{Sim: s, Costs: netmodel.Default(), Engine: l7.NewEngine(5), ShardSize: 2, Seed: 5})
	for i := 0; i < 4; i++ {
		if _, err := g.AddBackend(region.AZ("az1"), 1, 2, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddBackend(region.AZ("az1"), 1, 2, true); err != nil {
		t.Fatal(err)
	}
	shared := netip.MustParseAddr("192.168.0.10")
	good, err := g.RegisterService("good", "web", 100, shared, 80, false, l7.ServiceConfig{DefaultSubset: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	evil, err := g.RegisterService("evil", "web", 200, shared, 80, false, l7.ServiceConfig{DefaultSubset: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MigrateToSandbox(evil.ID, gateway.Lossy, nil); err != nil {
		t.Fatal(err)
	}
	okGood, okEvil := 0, 0
	s.At(time.Second, func() {
		for i := 0; i < 50; i++ {
			flow := cloud.SessionKey{SrcIP: "9.9.9.9", SrcPort: uint16(i + 1), DstIP: shared.String(), DstPort: 80, Proto: 6}
			g.Dispatch(good.ID, "az1", flow, &l7.Request{Method: "GET", Path: "/"}, 1, func(_ time.Duration, st int) {
				if st == 200 {
					okGood++
				}
			})
			g.Dispatch(evil.ID, "az1", flow, &l7.Request{Method: "GET", Path: "/"}, 1, func(_ time.Duration, st int) {
				if st == 200 {
					okEvil++
				}
			})
		}
	})
	s.Run()
	if okGood != 50 {
		t.Errorf("good tenant served %d/50", okGood)
	}
	if okEvil != 50 {
		t.Errorf("sandboxed tenant still serves (from the sandbox): %d/50", okEvil)
	}
	// And the sandboxed tenant's traffic really lands on sandbox backends.
	b, err := g.ResolveBackend(evil.ID, "az1", cloud.SessionKey{SrcIP: "a", SrcPort: 1, DstIP: "b", DstPort: 80, Proto: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Sandbox {
		t.Error("evil tenant must resolve to a sandbox")
	}
	gb, err := g.ResolveBackend(good.ID, "az1", cloud.SessionKey{SrcIP: "a", SrcPort: 1, DstIP: "b", DstPort: 80, Proto: 6})
	if err != nil {
		t.Fatal(err)
	}
	if gb.Sandbox {
		t.Error("good tenant must stay on regular backends")
	}
}
