package overlay

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleInner() Inner {
	return Inner{
		Src:     addr("10.0.1.5"),
		Dst:     addr("10.0.2.9"),
		SrcPort: 40123,
		DstPort: 8080,
		Proto:   6,
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	b, err := VXLAN{VNI: 0xABCDEF}.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != VXLANHeaderLen {
		t.Fatalf("len = %d, want %d", len(b), VXLANHeaderLen)
	}
	vx, rest, err := UnmarshalVXLAN(append(b, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 0xABCDEF {
		t.Errorf("VNI = %x", vx.VNI)
	}
	if !bytes.Equal(rest, []byte{1, 2, 3}) {
		t.Errorf("rest = %v", rest)
	}
}

func TestVXLANVNIRange(t *testing.T) {
	if _, err := (VXLAN{VNI: 1 << 24}).Marshal(nil); !errors.Is(err, ErrVNIRange) {
		t.Errorf("expected ErrVNIRange, got %v", err)
	}
	if _, err := (VXLAN{VNI: 1<<24 - 1}).Marshal(nil); err != nil {
		t.Errorf("max VNI should marshal: %v", err)
	}
}

func TestVXLANBadFlags(t *testing.T) {
	b := make([]byte, VXLANHeaderLen)
	if _, _, err := UnmarshalVXLAN(b); !errors.Is(err, ErrBadVXLAN) {
		t.Errorf("expected ErrBadVXLAN, got %v", err)
	}
}

func TestVXLANShortBuffer(t *testing.T) {
	if _, _, err := UnmarshalVXLAN([]byte{vxlanFlagValidVNI, 0}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("expected ErrShortBuffer, got %v", err)
	}
}

func TestInnerRoundTrip(t *testing.T) {
	in := sampleInner()
	b, err := in.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := UnmarshalInner(append(b, 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Errorf("round trip: got %+v, want %+v", got, in)
	}
	if len(rest) != 1 || rest[0] != 0xFF {
		t.Errorf("rest = %v", rest)
	}
}

func TestInnerRejectsIPv6(t *testing.T) {
	in := sampleInner()
	in.Src = addr("::1")
	if _, err := in.Marshal(nil); err == nil {
		t.Error("expected error for IPv6 src")
	}
}

func TestInnerRoundTripProperty(t *testing.T) {
	f := func(s, d [4]byte, sp, dp uint16, proto uint8) bool {
		in := Inner{
			Src: netip.AddrFrom4(s), Dst: netip.AddrFrom4(d),
			SrcPort: sp, DstPort: dp, Proto: proto,
		}
		b, err := in.Marshal(nil)
		if err != nil {
			return false
		}
		got, rest, err := UnmarshalInner(b)
		return err == nil && got == in && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShimRoundTripProperty(t *testing.T) {
	f := func(id uint64, flags uint16) bool {
		b := Shim{ServiceID: id, Flags: flags}.Marshal(nil)
		got, rest, err := UnmarshalShim(b)
		return err == nil && got.ServiceID == id && got.Flags == flags && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	in := sampleInner()
	payload := []byte("GET / HTTP/1.1")
	pkt, err := Encapsulate(42, in, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	vx, gotIn, gotPayload, err := Decapsulate(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if vx.VNI != 42 || gotIn != in || !bytes.Equal(gotPayload, payload) {
		t.Errorf("decap mismatch: %v %+v %q", vx.VNI, gotIn, gotPayload)
	}
}

func TestEncapsulateMTU(t *testing.T) {
	in := sampleInner()
	payload := make([]byte, 1500)
	if _, err := Encapsulate(1, in, payload, 1500); !errors.Is(err, ErrMTU) {
		t.Errorf("expected ErrMTU, got %v", err)
	}
	// Raising the device MTU (the paper's mitigation) makes it fit.
	if _, err := Encapsulate(1, in, payload, 9000); err != nil {
		t.Errorf("jumbo MTU should fit: %v", err)
	}
}

func TestVSwitchRegisterIdempotent(t *testing.T) {
	v := NewVSwitch()
	k := ServiceKey{VNI: 7, DstIP: addr("10.0.0.1"), DstPort: 80}
	id1 := v.Register(k)
	id2 := v.Register(k)
	if id1 != id2 {
		t.Errorf("re-registration changed ID: %d vs %d", id1, id2)
	}
	if got, ok := v.Reverse(id1); !ok || got != k {
		t.Errorf("Reverse(%d) = %v, %v", id1, got, ok)
	}
}

func TestVSwitchDisambiguatesOverlappingTenants(t *testing.T) {
	// Two tenants with the identical inner destination must map to different
	// service IDs because their VNIs differ — the crux of §4.2.
	v := NewVSwitch()
	dst := addr("192.168.0.10")
	idA := v.Register(ServiceKey{VNI: 100, DstIP: dst, DstPort: 80})
	idB := v.Register(ServiceKey{VNI: 200, DstIP: dst, DstPort: 80})
	if idA == idB {
		t.Fatal("overlapping inner addresses in different VPCs must get distinct service IDs")
	}
}

func TestVSwitchIngress(t *testing.T) {
	v := NewVSwitch()
	in := sampleInner()
	key := ServiceKey{VNI: 100, DstIP: in.Dst, DstPort: in.DstPort}
	id := v.Register(key)

	pkt, err := Encapsulate(100, in, []byte("hello"), 0)
	if err != nil {
		t.Fatal(err)
	}
	vmPkt, err := v.Ingress(pkt)
	if err != nil {
		t.Fatal(err)
	}
	shim, gotIn, payload, err := ParseVMPacket(vmPkt)
	if err != nil {
		t.Fatal(err)
	}
	if shim.ServiceID != id {
		t.Errorf("shim service ID = %d, want %d", shim.ServiceID, id)
	}
	if gotIn != in {
		t.Errorf("inner header corrupted: %+v", gotIn)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
}

func TestVSwitchIngressUnregistered(t *testing.T) {
	v := NewVSwitch()
	pkt, err := Encapsulate(100, sampleInner(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Ingress(pkt); err == nil {
		t.Error("expected error for unregistered destination")
	}
}

func TestVSwitchIngressGarbage(t *testing.T) {
	v := NewVSwitch()
	if _, err := v.Ingress([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for truncated packet")
	}
}

func TestParseVMPacketShort(t *testing.T) {
	if _, _, _, err := ParseVMPacket(make([]byte, 5)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("expected ErrShortBuffer, got %v", err)
	}
	if _, _, _, err := ParseVMPacket(make([]byte, ShimHeaderLen+3)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("expected ErrShortBuffer for truncated inner, got %v", err)
	}
}
