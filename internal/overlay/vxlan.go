// Package overlay implements the VXLAN overlay the mesh gateway rides on:
// byte-level VXLAN (RFC 7348) encapsulation, a minimal inner IPv4/transport
// header codec, the vSwitch mapping from VXLAN VNI to a globally unique
// service ID carried in a shim header (§4.2), and MTU accounting.
//
// The codecs operate directly on byte slices in the style of packet decoding
// libraries: each layer knows how to serialize itself in front of a payload
// and how to decode itself from the front of a buffer.
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Header sizes in bytes.
const (
	VXLANHeaderLen = 8
	InnerHeaderLen = 16
	ShimHeaderLen  = 10
	// OuterOverhead approximates outer IP (20) + UDP (8) + VXLAN (8).
	OuterOverhead = 36
)

// vxlanFlagValidVNI is the I flag: the VNI field is valid.
const vxlanFlagValidVNI = 0x08

var (
	ErrShortBuffer = errors.New("overlay: buffer too short")
	ErrBadVXLAN    = errors.New("overlay: invalid VXLAN header")
	ErrVNIRange    = errors.New("overlay: VNI exceeds 24 bits")
	ErrMTU         = errors.New("overlay: encapsulated packet exceeds MTU")
)

// VXLAN is the 8-byte VXLAN header. Only the VNI is meaningful; flag and
// reserved handling follows RFC 7348.
type VXLAN struct {
	VNI uint32 // 24-bit VXLAN network identifier
}

// Marshal appends the wire form of the header to dst.
func (v VXLAN) Marshal(dst []byte) ([]byte, error) {
	if v.VNI >= 1<<24 {
		return nil, ErrVNIRange
	}
	var h [VXLANHeaderLen]byte
	h[0] = vxlanFlagValidVNI
	h[4] = byte(v.VNI >> 16)
	h[5] = byte(v.VNI >> 8)
	h[6] = byte(v.VNI)
	return append(dst, h[:]...), nil
}

// UnmarshalVXLAN decodes a VXLAN header from the front of b and returns the
// header and the remaining payload.
func UnmarshalVXLAN(b []byte) (VXLAN, []byte, error) {
	if len(b) < VXLANHeaderLen {
		return VXLAN{}, nil, ErrShortBuffer
	}
	if b[0]&vxlanFlagValidVNI == 0 {
		return VXLAN{}, nil, ErrBadVXLAN
	}
	vni := uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return VXLAN{VNI: vni}, b[VXLANHeaderLen:], nil
}

// Inner is the simplified inner L3/L4 header: IPv4 addresses, transport
// ports, and protocol. It is 16 bytes on the wire.
type Inner struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Marshal appends the wire form of the inner header to dst.
func (in Inner) Marshal(dst []byte) ([]byte, error) {
	if !in.Src.Is4() || !in.Dst.Is4() {
		return nil, fmt.Errorf("overlay: inner header requires IPv4 addresses (src=%v dst=%v)", in.Src, in.Dst)
	}
	var h [InnerHeaderLen]byte
	s, d := in.Src.As4(), in.Dst.As4()
	copy(h[0:4], s[:])
	copy(h[4:8], d[:])
	binary.BigEndian.PutUint16(h[8:10], in.SrcPort)
	binary.BigEndian.PutUint16(h[10:12], in.DstPort)
	h[12] = in.Proto
	// h[13:16] reserved.
	return append(dst, h[:]...), nil
}

// UnmarshalInner decodes an inner header from the front of b.
func UnmarshalInner(b []byte) (Inner, []byte, error) {
	if len(b) < InnerHeaderLen {
		return Inner{}, nil, ErrShortBuffer
	}
	var in Inner
	in.Src = netip.AddrFrom4([4]byte(b[0:4]))
	in.Dst = netip.AddrFrom4([4]byte(b[4:8]))
	in.SrcPort = binary.BigEndian.Uint16(b[8:10])
	in.DstPort = binary.BigEndian.Uint16(b[10:12])
	in.Proto = b[12]
	return in, b[InnerHeaderLen:], nil
}

// Shim is the per-packet shim the vSwitch attaches after mapping the VNI to a
// globally unique service ID, so VMs above the vSwitch (which never see the
// outer VXLAN header) can still distinguish tenant services.
type Shim struct {
	ServiceID uint64
	Flags     uint16
}

// Shim flags.
const (
	// ShimSandboxed marks traffic already diverted to a sandbox.
	ShimSandboxed uint16 = 1 << iota
	// ShimThrottled marks traffic admitted under an active throttle.
	ShimThrottled
)

// Marshal appends the wire form of the shim to dst.
func (s Shim) Marshal(dst []byte) []byte {
	var h [ShimHeaderLen]byte
	binary.BigEndian.PutUint64(h[0:8], s.ServiceID)
	binary.BigEndian.PutUint16(h[8:10], s.Flags)
	return append(dst, h[:]...)
}

// UnmarshalShim decodes a shim header from the front of b.
func UnmarshalShim(b []byte) (Shim, []byte, error) {
	if len(b) < ShimHeaderLen {
		return Shim{}, nil, ErrShortBuffer
	}
	return Shim{
		ServiceID: binary.BigEndian.Uint64(b[0:8]),
		Flags:     binary.BigEndian.Uint16(b[8:10]),
	}, b[ShimHeaderLen:], nil
}

// Encapsulate builds outer(VXLAN) + inner + payload. mtu <= 0 disables the
// MTU check; otherwise the full encapsulated size (including the modeled
// outer IP/UDP overhead) must fit, or ErrMTU is returned — the failure mode
// the paper mitigates by raising the device MTU (Appendix A).
func Encapsulate(vni uint32, in Inner, payload []byte, mtu int) ([]byte, error) {
	buf := make([]byte, 0, VXLANHeaderLen+InnerHeaderLen+len(payload))
	buf, err := VXLAN{VNI: vni}.Marshal(buf)
	if err != nil {
		return nil, err
	}
	buf, err = in.Marshal(buf)
	if err != nil {
		return nil, err
	}
	buf = append(buf, payload...)
	if mtu > 0 && len(buf)+OuterOverhead-VXLANHeaderLen > mtu {
		return nil, fmt.Errorf("%w: %d > %d", ErrMTU, len(buf)+OuterOverhead-VXLANHeaderLen, mtu)
	}
	return buf, nil
}

// Decapsulate splits an encapsulated packet into its VXLAN header, inner
// header, and payload.
func Decapsulate(b []byte) (VXLAN, Inner, []byte, error) {
	vx, rest, err := UnmarshalVXLAN(b)
	if err != nil {
		return VXLAN{}, Inner{}, nil, err
	}
	in, payload, err := UnmarshalInner(rest)
	if err != nil {
		return VXLAN{}, Inner{}, nil, err
	}
	return vx, in, payload, nil
}
