package overlay

import (
	"fmt"
	"net/netip"
	"sync"
)

// ServiceKey is what the vSwitch can see before stripping the outer VXLAN
// header: the tenant's VNI plus the inner destination. Because inner address
// spaces overlap across tenants, the VNI is a mandatory part of the key.
type ServiceKey struct {
	VNI     uint32
	DstIP   netip.Addr
	DstPort uint16
}

// VSwitch maps (VNI, inner destination) to globally unique service IDs and
// rewrites packets so that VMs above it — which never see the outer VXLAN
// header — can still distinguish tenant services (§4.2). It is safe for
// concurrent use.
type VSwitch struct {
	mu     sync.RWMutex
	byKey  map[ServiceKey]uint64
	byID   map[uint64]ServiceKey
	nextID uint64
}

// NewVSwitch returns an empty vSwitch.
func NewVSwitch() *VSwitch {
	return &VSwitch{byKey: make(map[ServiceKey]uint64), byID: make(map[uint64]ServiceKey)}
}

// Register assigns (or returns the existing) globally unique service ID for a
// tenant service destination.
func (v *VSwitch) Register(key ServiceKey) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.byKey[key]; ok {
		return id
	}
	v.nextID++
	v.byKey[key] = v.nextID
	v.byID[v.nextID] = key
	return v.nextID
}

// Lookup returns the service ID for a key, if registered.
func (v *VSwitch) Lookup(key ServiceKey) (uint64, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.byKey[key]
	return id, ok
}

// Reverse returns the key a service ID was registered under.
func (v *VSwitch) Reverse(id uint64) (ServiceKey, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	k, ok := v.byID[id]
	return k, ok
}

// Ingress processes one encapsulated packet arriving from the underlay:
// it decapsulates the VXLAN header, resolves the service ID, and re-emits
// shim + inner + payload — the form gateway VMs receive. Unregistered
// destinations are an error: the controller must install service mappings
// before traffic flows.
func (v *VSwitch) Ingress(encapsulated []byte) ([]byte, error) {
	vx, in, payload, err := Decapsulate(encapsulated)
	if err != nil {
		return nil, err
	}
	id, ok := v.Lookup(ServiceKey{VNI: vx.VNI, DstIP: in.Dst, DstPort: in.DstPort})
	if !ok {
		return nil, fmt.Errorf("overlay: no service mapping for VNI %d dst %v:%d", vx.VNI, in.Dst, in.DstPort)
	}
	out := Shim{ServiceID: id}.Marshal(nil)
	out, err = in.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(out, payload...), nil
}

// ParseVMPacket decodes a packet as delivered to a gateway VM: shim + inner +
// payload.
func ParseVMPacket(b []byte) (Shim, Inner, []byte, error) {
	shim, rest, err := UnmarshalShim(b)
	if err != nil {
		return Shim{}, Inner{}, nil, err
	}
	in, payload, err := UnmarshalInner(rest)
	if err != nil {
		return Shim{}, Inner{}, nil, err
	}
	return shim, in, payload, nil
}
