// Package tunnel implements session aggregation via tunneling (§4.4,
// Fig. 9): the aggregator at the router encapsulates a large number of user
// sessions into a few VXLAN tunnels toward each replica (outer DIP = replica
// IP, outer SIP = router IP), so the memory-constrained SmartNIC session
// table at the underlying server tracks tunnels instead of user sessions.
// Different outer source ports spread the tunnels across the replica's CPU
// cores via the vSwitch's RSS-style hashing.
package tunnel

import (
	"fmt"
	"net/netip"

	"canalmesh/internal/cloud"
	"canalmesh/internal/l4"
	"canalmesh/internal/overlay"
)

// BasePort is the first outer source port used for tunnels.
const BasePort = 50000

// TunnelsPerCore is the recommended tunnel multiplicity per replica core
// (§4.4: "an appropriate number of tunnels (e.g., 10 times the number of
// cores)").
const TunnelsPerCore = 10

// Aggregator encapsulates inner sessions into per-replica tunnels.
type Aggregator struct {
	RouterIP netip.Addr
	VNI      uint32
	Tunnels  int // tunnels per replica
	MTU      int // 0 disables the MTU check
}

// NewAggregator returns an aggregator creating `tunnels` tunnels per replica.
func NewAggregator(routerIP netip.Addr, vni uint32, tunnels, mtu int) (*Aggregator, error) {
	if tunnels <= 0 {
		return nil, fmt.Errorf("tunnel: need at least one tunnel, got %d", tunnels)
	}
	if !routerIP.Is4() {
		return nil, fmt.Errorf("tunnel: router IP must be IPv4, got %v", routerIP)
	}
	return &Aggregator{RouterIP: routerIP, VNI: vni, Tunnels: tunnels, MTU: mtu}, nil
}

// TunnelPort returns the outer source port (tunnel index) a session maps to.
// The mapping is stable per flow so a session always uses the same tunnel
// and therefore the same replica core.
func (a *Aggregator) TunnelPort(k cloud.SessionKey) uint16 {
	return BasePort + uint16(l4.Hash5Tuple(k)%uint64(a.Tunnels))
}

// OuterKey returns the session-table entry the underlying server tracks for
// a packet of inner session k toward the replica: the tunnel's outer
// 5-tuple. Only Tunnels distinct keys exist per replica, regardless of how
// many inner sessions flow.
func (a *Aggregator) OuterKey(k cloud.SessionKey, replicaIP netip.Addr) cloud.SessionKey {
	return cloud.SessionKey{
		SrcIP:   a.RouterIP.String(),
		SrcPort: a.TunnelPort(k),
		DstIP:   replicaIP.String(),
		DstPort: overlayVXLANPort,
		Proto:   17, // UDP
	}
}

// overlayVXLANPort is the IANA VXLAN UDP port.
const overlayVXLANPort = 4789

// Encapsulate wraps an inner packet for delivery through the session-
// aggregating tunnel. The returned bytes are what crosses the underlay.
func (a *Aggregator) Encapsulate(in overlay.Inner, payload []byte) ([]byte, error) {
	return overlay.Encapsulate(a.VNI, in, payload, a.MTU)
}

// Disaggregator strips tunnel encapsulation at the replica and assigns the
// inner packet to a core.
type Disaggregator struct {
	Cores int
}

// NewDisaggregator returns a disaggregator spreading load over cores.
func NewDisaggregator(cores int) (*Disaggregator, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("tunnel: replica needs at least one core, got %d", cores)
	}
	return &Disaggregator{Cores: cores}, nil
}

// Receive decapsulates one tunneled packet. The core assignment hashes the
// outer source port — the vSwitch's behaviour — so tunnels, not inner
// sessions, determine core placement.
func (d *Disaggregator) Receive(pkt []byte, outerSPort uint16) (overlay.Inner, []byte, int, error) {
	_, in, payload, err := overlay.Decapsulate(pkt)
	if err != nil {
		return overlay.Inner{}, nil, 0, fmt.Errorf("tunnel: decapsulating: %w", err)
	}
	core := int(outerSPort) % d.Cores
	return in, payload, core, nil
}

// Accounting compares session-table pressure with and without aggregation.
type Accounting struct {
	InnerSessions  int // user sessions flowing to one replica
	TunnelSessions int // outer sessions actually tracked
}

// Account returns the accounting for n inner sessions through the
// aggregator toward one replica.
func (a *Aggregator) Account(n int) Accounting {
	t := a.Tunnels
	if n < t {
		t = n
	}
	return Accounting{InnerSessions: n, TunnelSessions: t}
}

// VMsForSessions returns how many VMs a deployment needs to hold `sessions`
// concurrent sessions given the per-VM session capacity and a CPU-driven
// floor (VMs needed for compute regardless of sessions). This is the
// arithmetic behind Table 5's observation that session savings do not
// translate 1:1 into VM savings.
func VMsForSessions(sessions, perVMCapacity, cpuFloor int) int {
	if perVMCapacity <= 0 {
		panic("tunnel: per-VM session capacity must be positive")
	}
	vms := (sessions + perVMCapacity - 1) / perVMCapacity
	if vms < cpuFloor {
		vms = cpuFloor
	}
	if vms < 1 {
		vms = 1
	}
	return vms
}
