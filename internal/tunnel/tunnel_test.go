package tunnel

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"canalmesh/internal/cloud"
	"canalmesh/internal/overlay"
)

func agg(t *testing.T, tunnels int) *Aggregator {
	t.Helper()
	a, err := NewAggregator(netip.MustParseAddr("100.64.0.1"), 42, tunnels, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func innerKey(p uint16) cloud.SessionKey {
	return cloud.SessionKey{SrcIP: "10.0.0.5", SrcPort: p, DstIP: "10.1.0.9", DstPort: 443, Proto: 6}
}

func TestNewAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(netip.MustParseAddr("100.64.0.1"), 1, 0, 0); err == nil {
		t.Error("zero tunnels must fail")
	}
	if _, err := NewAggregator(netip.MustParseAddr("::1"), 1, 4, 0); err == nil {
		t.Error("IPv6 router must fail")
	}
}

func TestTunnelPortStableAndInRange(t *testing.T) {
	a := agg(t, 40)
	for p := uint16(1); p < 500; p++ {
		k := innerKey(p)
		port := a.TunnelPort(k)
		if port < BasePort || port >= BasePort+40 {
			t.Fatalf("port %d out of range", port)
		}
		if a.TunnelPort(k) != port {
			t.Fatal("tunnel mapping must be stable")
		}
	}
}

func TestSessionAggregationBound(t *testing.T) {
	// The headline mechanism: hundreds of thousands of inner sessions
	// collapse to at most `tunnels` outer sessions.
	a := agg(t, 40)
	replica := netip.MustParseAddr("100.64.1.7")
	outer := map[cloud.SessionKey]bool{}
	for p := uint16(1); p != 0; p++ { // 65535 inner sessions
		outer[a.OuterKey(innerKey(p), replica)] = true
	}
	if len(outer) > 40 {
		t.Errorf("outer sessions = %d, want <= 40", len(outer))
	}
	if len(outer) < 30 {
		t.Errorf("outer sessions = %d; hash should populate most tunnels", len(outer))
	}
}

func TestOuterKeyFields(t *testing.T) {
	a := agg(t, 4)
	replica := netip.MustParseAddr("100.64.1.7")
	k := a.OuterKey(innerKey(1), replica)
	if k.SrcIP != "100.64.0.1" || k.DstIP != "100.64.1.7" {
		t.Errorf("outer IPs = %s -> %s", k.SrcIP, k.DstIP)
	}
	if k.DstPort != 4789 || k.Proto != 17 {
		t.Errorf("outer dst port/proto = %d/%d, want VXLAN UDP", k.DstPort, k.Proto)
	}
}

func TestEncapDecapRoundTrip(t *testing.T) {
	a := agg(t, 4)
	d, err := NewDisaggregator(8)
	if err != nil {
		t.Fatal(err)
	}
	in := overlay.Inner{
		Src:     netip.MustParseAddr("10.0.0.5"),
		Dst:     netip.MustParseAddr("10.1.0.9"),
		SrcPort: 1234, DstPort: 443, Proto: 6,
	}
	payload := []byte("POST /checkout HTTP/1.1")
	pkt, err := a.Encapsulate(in, payload)
	if err != nil {
		t.Fatal(err)
	}
	gotIn, gotPayload, core, err := d.Receive(pkt, a.TunnelPort(innerKey(1234)))
	if err != nil {
		t.Fatal(err)
	}
	if gotIn != in || !bytes.Equal(gotPayload, payload) {
		t.Error("inner packet corrupted through tunnel")
	}
	if core < 0 || core >= 8 {
		t.Errorf("core = %d out of range", core)
	}
}

func TestReceiveGarbage(t *testing.T) {
	d, _ := NewDisaggregator(2)
	if _, _, _, err := d.Receive([]byte{1, 2, 3}, BasePort); err == nil {
		t.Error("garbage should fail to decapsulate")
	}
}

func TestNewDisaggregatorValidation(t *testing.T) {
	if _, err := NewDisaggregator(0); err == nil {
		t.Error("zero cores must fail")
	}
}

func TestCoreSpreading(t *testing.T) {
	// 10x tunnels per core should spread tunnels roughly evenly over cores.
	cores := 4
	a := agg(t, cores*TunnelsPerCore)
	d, _ := NewDisaggregator(cores)
	counts := make([]int, cores)
	for i := 0; i < a.Tunnels; i++ {
		counts[int(BasePort+uint16(i))%d.Cores]++
	}
	for c, n := range counts {
		if n != TunnelsPerCore {
			t.Errorf("core %d gets %d tunnels, want %d", c, n, TunnelsPerCore)
		}
	}
}

func TestMTUEnforced(t *testing.T) {
	a, err := NewAggregator(netip.MustParseAddr("100.64.0.1"), 1, 4, 1500)
	if err != nil {
		t.Fatal(err)
	}
	in := overlay.Inner{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, Proto: 6,
	}
	if _, err := a.Encapsulate(in, make([]byte, 1480)); err == nil {
		t.Error("encapsulation overhead should trip the 1500 MTU")
	}
	// The paper's fix: raise the device MTU.
	a.MTU = 9000
	if _, err := a.Encapsulate(in, make([]byte, 1480)); err != nil {
		t.Errorf("jumbo frames should fit: %v", err)
	}
}

func TestAccount(t *testing.T) {
	a := agg(t, 40)
	acc := a.Account(250_000)
	if acc.TunnelSessions != 40 || acc.InnerSessions != 250_000 {
		t.Errorf("accounting = %+v", acc)
	}
	few := a.Account(5)
	if few.TunnelSessions != 5 {
		t.Errorf("fewer sessions than tunnels: %+v", few)
	}
}

func TestVMsForSessions(t *testing.T) {
	// 900k sessions at 100k/VM: 9 VMs for sessions even if CPU needs 2.
	if got := VMsForSessions(900_000, 100_000, 2); got != 9 {
		t.Errorf("VMs = %d, want 9", got)
	}
	// After aggregation sessions collapse, but the CPU floor holds: the
	// Table 5 caveat that savings are not proportional.
	if got := VMsForSessions(40, 100_000, 2); got != 2 {
		t.Errorf("VMs = %d, want CPU floor 2", got)
	}
	if got := VMsForSessions(0, 100_000, 0); got != 1 {
		t.Errorf("VMs = %d, want minimum 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	VMsForSessions(1, 0, 1)
}

func TestTunnelDistributionAcrossManyFlows(t *testing.T) {
	a := agg(t, 16)
	counts := map[uint16]int{}
	for i := 0; i < 16000; i++ {
		k := cloud.SessionKey{SrcIP: fmt.Sprintf("10.0.%d.%d", i/250, i%250), SrcPort: uint16(i), DstIP: "10.1.0.1", DstPort: 443, Proto: 6}
		counts[a.TunnelPort(k)]++
	}
	for port, n := range counts {
		if n < 500 || n > 1500 {
			t.Errorf("tunnel %d carries %d of 16000 flows; poor balance", port, n)
		}
	}
}
