package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// The suggested-fix engine. Analyzers attach a SuggestedFix to a
// diagnostic via Reporter.ReportFix; `canalvet -fix` collects the fixes of
// every *surviving* diagnostic (suppressed findings never produce edits)
// and applies them with ApplyFixes. The contract:
//
//   - edits are byte-offset splices against the file content the analyzers
//     saw; each rewritten file is gofmt-ed (go/format) before writing, so
//     a -fix run can never introduce a formatting violation;
//   - overlapping edits are refused file-by-file — the file is left
//     untouched and the conflict reported — rather than guessed at;
//   - fixes are idempotent by construction: an applied fix removes the
//     pattern its analyzer matches, so a second run finds nothing. CI
//     asserts this by running `canalvet -fix` and requiring an empty diff.

// Fix is the analyzer-side description of a remediation, still in
// token.Pos space; Reporter.ReportFix resolves it to byte offsets.
type Fix struct {
	Message string
	Edits   []Edit
}

// Edit replaces [Pos, End) with NewText.
type Edit struct {
	Pos, End token.Pos
	NewText  string
}

// TextEdit is a resolved edit: byte offsets within a named file.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// SuggestedFix is the resolved remediation carried by a Diagnostic.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Fixed maps each rewritten file to the number of fixes applied to it.
	Fixed map[string]int
	// Refused lists conflicts (overlapping edits) that left a file
	// untouched, as human-readable messages.
	Refused []string
}

// ApplyFixes applies every suggested fix among diags to the files on disk.
// Identical duplicate edits collapse; genuinely overlapping edits cause
// the whole file to be refused. Each changed file is reformatted with
// go/format before being written back.
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	type fileEdits struct {
		edits []TextEdit
		fixes int
	}
	perFile := map[string]*fileEdits{}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		for _, e := range d.Fix.Edits {
			fe := perFile[e.File]
			if fe == nil {
				fe = &fileEdits{}
				perFile[e.File] = fe
			}
			fe.edits = append(fe.edits, e)
		}
		perFile[d.Fix.Edits[0].File].fixes++
	}
	res := &FixResult{Fixed: map[string]int{}}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		fe := perFile[file]
		edits := dedupeEdits(fe.edits)
		if conflict := overlapping(edits); conflict != "" {
			res.Refused = append(res.Refused, fmt.Sprintf("%s: refusing overlapping fixes (%s)", file, conflict))
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return res, err
		}
		out, err := spliceEdits(src, edits)
		if err != nil {
			res.Refused = append(res.Refused, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		formatted, err := format.Source(out)
		if err != nil {
			// A fix that breaks parsing must never reach disk.
			res.Refused = append(res.Refused, fmt.Sprintf("%s: fixed source does not gofmt: %v", file, err))
			continue
		}
		if err := os.WriteFile(file, formatted, 0o644); err != nil {
			return res, err
		}
		res.Fixed[file] = fe.fixes
	}
	return res, nil
}

// dedupeEdits sorts edits by start offset and drops exact duplicates (two
// diagnostics may legitimately propose the same deletion).
func dedupeEdits(edits []TextEdit) []TextEdit {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	out := edits[:0]
	for i, e := range edits {
		if i > 0 && e == out[len(out)-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// overlapping returns a description of the first overlap among
// start-sorted edits, or "" when they are disjoint.
func overlapping(edits []TextEdit) string {
	for i := 1; i < len(edits); i++ {
		if edits[i].Start < edits[i-1].End {
			return fmt.Sprintf("offsets %d-%d and %d-%d", edits[i-1].Start, edits[i-1].End, edits[i].Start, edits[i].End)
		}
	}
	return ""
}

// spliceEdits applies start-sorted disjoint edits to src.
func spliceEdits(src []byte, edits []TextEdit) ([]byte, error) {
	var out []byte
	prev := 0
	for _, e := range edits {
		if e.Start < prev || e.End > len(src) || e.Start > e.End {
			return nil, fmt.Errorf("edit %d-%d out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		out = append(out, src[prev:e.Start]...)
		out = append(out, e.NewText...)
		prev = e.End
	}
	out = append(out, src[prev:]...)
	return out, nil
}

// Fixable reports how many of diags carry an applicable fix.
func Fixable(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fix != nil && len(d.Fix.Edits) > 0 {
			n++
		}
	}
	return n
}
