package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directiveMarker introduces a suppression comment. The full form is
//
//	//canal:allow <analyzer> <reason...>
//
// and, like //go: directives, it must have no space after the slashes.
const directiveMarker = "//canal:allow"

// Directive is one parsed, well-formed suppression.
type Directive struct {
	Pos      token.Position
	End      token.Position // one past the comment, for -fix deletion edits
	Analyzer string
	Reason   string
	used     bool
}

// ParseDirectives extracts every //canal:allow directive in the package.
// Malformed directives — unknown analyzer name, missing reason — come back
// as diagnostics under the pseudo-analyzer "directive" rather than silently
// suppressing nothing.
func ParseDirectives(p *Package) ([]*Directive, []Diagnostic) {
	names := AnalyzerNames()
	var dirs []*Directive
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Pos: p.Fset.Position(pos), Analyzer: "directive", Message: msg})
	}
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				text := c.Text
				// //canal:boundary is the dataflow engine's audited-isolation
				// declaration (dataflow.go). It has no staleness lifecycle —
				// it documents a design point, not a suppressed line — but it
				// must carry a reason like any other directive.
				if rest, ok := strings.CutPrefix(text, boundaryMarker); ok {
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					if strings.TrimSpace(rest) == "" {
						report(c.Pos(), "canal:boundary needs a reason declaring what makes this an audited isolation point")
					}
					continue
				}
				if !strings.HasPrefix(text, directiveMarker) {
					continue
				}
				rest := strings.TrimPrefix(text, directiveMarker)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //canal:allowfoo — not ours.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "canal:allow needs an analyzer name and a reason")
					continue
				}
				if !names[fields[0]] {
					report(c.Pos(), "canal:allow names unknown analyzer \""+fields[0]+"\"")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "canal:allow "+fields[0]+" needs a reason")
					continue
				}
				dirs = append(dirs, &Directive{
					Pos:      p.Fset.Position(c.Pos()),
					End:      p.Fset.Position(c.End()),
					Analyzer: fields[0],
					Reason:   strings.TrimSpace(rest[strings.Index(rest, fields[0])+len(fields[0]):]),
				})
			}
		}
	}
	return dirs, bad
}

// CountBoundaries returns the number of well-formed //canal:boundary
// declarations in the package — the audited-isolation census TestSelfHost
// pins alongside the //canal:allow count.
func CountBoundaries(p *Package) int {
	n := 0
	for _, sf := range p.Files {
		for _, cg := range sf.AST.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, boundaryMarker)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				if strings.TrimSpace(rest) != "" {
					n++
				}
			}
		}
	}
	return n
}

// ApplyDirectives filters diags through the suppressions: a directive
// covers diagnostics of its analyzer in the same file on the directive's
// own line (trailing comment) or the line directly below (standalone
// comment above the statement). Directives that suppressed nothing are
// returned as "directive" diagnostics so stale annotations surface instead
// of rotting.
func ApplyDirectives(diags []Diagnostic, dirs []*Directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.Analyzer == d.Analyzer &&
				dir.Pos.Filename == d.Pos.Filename &&
				(dir.Pos.Line == d.Pos.Line || dir.Pos.Line+1 == d.Pos.Line) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			// Stale directives carry their reason text, so the report shows
			// what justification is rotting, and a deletion fix: -fix
			// removes the comment (gofmt reclaims any whitespace left).
			out = append(out, Diagnostic{
				Pos:      dir.Pos,
				Analyzer: "directive",
				Message: fmt.Sprintf("canal:allow %s suppresses nothing (stale reason: %q; remove the directive)",
					dir.Analyzer, dir.Reason),
				Stale: true,
				Fix: &SuggestedFix{
					Message: "delete the stale //canal:allow directive",
					Edits: []TextEdit{{
						File:  dir.Pos.Filename,
						Start: dir.Pos.Offset,
						End:   dir.End.Offset,
					}},
				},
			})
		}
	}
	return out
}
