package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the typed half of the engine: it type-checks the whole
// module from the already-parsed ASTs, using only the standard library.
//
// In-repo imports are resolved by a source-based importer that recurses
// through the parsed packages in dependency order (a DFS with an
// in-progress set, so import cycles are reported as errors rather than
// hanging or panicking). Standard-library imports are delegated to the
// stdlib's own source importer (importer.ForCompiler "source"), which
// type-checks GOROOT source and therefore works on toolchains that no
// longer ship pre-built export data; cgo is disabled for that context so
// packages like net fall back to their pure-Go variants.
//
// Every package shares one types.Info. The maps are keyed by AST node, so
// a single Info can absorb any number of types.Check calls without
// collisions, and analyzers can resolve any expression they encounter
// through Package.TypesInfo regardless of which checking unit produced it.
//
// Each directory is checked as up to three units:
//
//  1. the import view — non-test files only, cached and returned to
//     importing packages (keeps test-only imports out of the import graph,
//     where they could manufacture cycles that `go build` never sees);
//  2. the augmented unit — non-test plus in-package _test.go files, so
//     analyzers get type information for in-package tests too;
//  3. the external test unit — package foo_test files, checked as their
//     own package importing the base.
//
// Units 2 and 3 re-resolve their files into the shared Info; analyzers
// must therefore match types by (package path, name), never by object
// identity, since a declaration in a non-test file is re-checked by the
// augmented unit under a fresh types.Object.
//
// A unit that fails to type-check is reported (as "typecheck" diagnostics
// on the owning package) and analysis continues with whatever partial
// type information the checker produced: a broken package must surface as
// findings, not abort the run.

// typeChecker resolves and caches the module's type-checked packages.
type typeChecker struct {
	fset    *token.FileSet
	module  string
	byPath  map[string]*Package
	std     types.Importer
	done    map[string]*types.Package
	loading map[string]bool
	stack   []string
	info    *types.Info
	seen    map[string]bool // dedupe key for recorded type errors
}

// newInfo allocates a types.Info with every map live, shared by all units.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ImportPath returns the import path the package type-checks under.
func (p *Package) ImportPath() string {
	if p.Dir == "" {
		return p.Module
	}
	return p.Module + "/" + p.Dir
}

// TypeCheck type-checks every package, populating Package.TypesPkg,
// Package.TypesInfo and Package.TypeErrors in place. It never fails: a
// package that cannot be type-checked (syntax survivors, import cycles,
// type errors, missing imports) carries the problems in TypeErrors and
// whatever partial type information the checker managed to produce.
func TypeCheck(pkgs []*Package) {
	if len(pkgs) == 0 {
		return
	}
	module := pkgs[0].Module
	if module == "" {
		module = DefaultModule
	}
	// All packages share the loader's FileSet.
	tc := &typeChecker{
		fset:    pkgs[0].Fset,
		module:  module,
		byPath:  make(map[string]*Package, len(pkgs)),
		done:    map[string]*types.Package{},
		loading: map[string]bool{},
		info:    newInfo(),
		seen:    map[string]bool{},
	}
	// The source importer reads GOROOT source; cgo off keeps it to pure-Go
	// fallbacks (and off the cgo tool, which may not be runnable here).
	build.Default.CgoEnabled = false
	tc.std = importer.ForCompiler(tc.fset, "source", nil)
	for _, p := range pkgs {
		tc.byPath[p.ImportPath()] = p
		p.TypesInfo = tc.info
	}
	// Deterministic outer order; recursion imposes dependency order.
	ordered := make([]*Package, len(pkgs))
	copy(ordered, pkgs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Dir < ordered[j].Dir })
	for _, p := range ordered {
		tc.check(p)
	}
}

// Import implements types.Importer: in-module paths resolve through the
// parsed packages, everything else through the stdlib source importer.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	if p, ok := tc.byPath[path]; ok {
		return tc.ensure(p)
	}
	if path == tc.module || strings.HasPrefix(path, tc.module+"/") {
		return nil, fmt.Errorf("no package %q in module %s", path, tc.module)
	}
	return tc.std.Import(path)
}

// ensure returns the import view of p, type-checking it (and, recursively,
// its imports) on first demand.
func (tc *typeChecker) ensure(p *Package) (*types.Package, error) {
	path := p.ImportPath()
	if tp, ok := tc.done[path]; ok {
		return tp, nil
	}
	if tc.loading[path] {
		return nil, fmt.Errorf("import cycle: %s -> %s", strings.Join(tc.stack, " -> "), path)
	}
	tc.loading[path] = true
	tc.stack = append(tc.stack, path)

	tp := tc.checkUnit(p, path, p.unitFiles(unitImportView))
	tc.done[path] = tp

	tc.stack = tc.stack[:len(tc.stack)-1]
	delete(tc.loading, path)
	return tp, nil
}

// check runs all three units of p. The import view is cached; the
// augmented and external-test units only refresh the shared Info.
func (tc *typeChecker) check(p *Package) {
	if _, err := tc.ensure(p); err != nil {
		tc.record(p, token.NoPos, err.Error())
	}
	p.TypesPkg = tc.done[p.ImportPath()]
	if files := p.unitFiles(unitAugmented); files != nil {
		tc.checkUnit(p, p.ImportPath(), files)
	}
	if files := p.unitFiles(unitExternalTest); files != nil {
		tc.checkUnit(p, p.ImportPath()+"_test", files)
	}
}

// checkUnit type-checks one file set under the given path, recording every
// error on p. It returns the (possibly partial) package.
func (tc *typeChecker) checkUnit(p *Package, path string, files []*ast.File) *types.Package {
	conf := types.Config{
		Importer:    tc,
		FakeImportC: true,
		Error:       func(err error) { tc.recordErr(p, err) },
	}
	tpkg, err := conf.Check(path, tc.fset, files, tc.info)
	if err != nil && len(p.TypeErrors) == 0 {
		// The Error callback catches types.Error lists; anything else
		// (e.g. a nil file) only surfaces here.
		tc.recordErr(p, err)
	}
	return tpkg
}

// recordErr records a type-check failure as a diagnostic on p.
func (tc *typeChecker) recordErr(p *Package, err error) {
	if te, ok := err.(types.Error); ok {
		tc.record(p, te.Pos, te.Msg)
		return
	}
	tc.record(p, token.NoPos, err.Error())
}

func (tc *typeChecker) record(p *Package, pos token.Pos, msg string) {
	position := tc.fset.Position(pos)
	if !pos.IsValid() && len(p.Files) > 0 {
		position = tc.fset.Position(p.Files[0].AST.Pos())
		position.Line, position.Column = 0, 0
	}
	key := fmt.Sprintf("%s:%d:%d:%s", position.Filename, position.Line, position.Column, msg)
	if tc.seen[key] {
		return
	}
	tc.seen[key] = true
	p.TypeErrors = append(p.TypeErrors, Diagnostic{
		Pos:      position,
		Analyzer: "typecheck",
		Message:  msg,
	})
}

type unitKind int

const (
	unitImportView unitKind = iota
	unitAugmented
	unitExternalTest
)

// unitFiles selects the ASTs for one checking unit. It returns nil when
// the unit adds nothing over the import view (no test files of that kind),
// so callers can skip the re-check.
func (p *Package) unitFiles(kind unitKind) []*ast.File {
	extName := p.baseName() + "_test"
	var files []*ast.File
	hasKind := false
	for _, sf := range p.Files {
		ext := sf.AST.Name.Name == extName
		switch kind {
		case unitImportView:
			if !sf.Test {
				files = append(files, sf.AST)
			}
		case unitAugmented:
			if !ext {
				files = append(files, sf.AST)
				if sf.Test {
					hasKind = true
				}
			}
		case unitExternalTest:
			if ext {
				files = append(files, sf.AST)
				hasKind = true
			}
		}
	}
	if kind != unitImportView && !hasKind {
		return nil
	}
	return files
}

// baseName is the package's non-test name: for a directory holding both
// package foo and package foo_test files, "foo".
func (p *Package) baseName() string {
	for _, sf := range p.Files {
		if name := sf.AST.Name.Name; !strings.HasSuffix(name, "_test") {
			return name
		}
	}
	return strings.TrimSuffix(p.Name, "_test")
}

// typeOf resolves an expression's type, or nil when type-checking did not
// reach it (a package with errors yields partial info; analyzers degrade
// to silence rather than guessing).
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// constValue reports whether e type-checked as a compile-time constant.
func (p *Package) isConst(e ast.Expr) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// namedType reports whether t (after unaliasing) is the named type
// pkgPath.name.
func namedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
