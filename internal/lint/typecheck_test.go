package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadEngineModule loads and type-checks one of the mini-modules under
// testdata/engine (each has its own go.mod, so import paths resolve under
// the fixture's module name, not canalmesh).
func loadEngineModule(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, _, err := LoadModule(filepath.Join("testdata", "engine", name))
	if err != nil {
		t.Fatal(err)
	}
	TypeCheck(pkgs)
	return pkgs
}

func importOf(tp *types.Package, path string) *types.Package {
	if tp == nil {
		return nil
	}
	for _, imp := range tp.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}

// TestTypeCheckDiamond proves the importer resolves a diamond a -> {b, c}
// -> d in dependency order and hands both arms the same cached base.
func TestTypeCheckDiamond(t *testing.T) {
	pkgs := loadEngineModule(t, "diamond")
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d packages, want 4", len(pkgs))
	}
	byDir := map[string]*Package{}
	for _, p := range pkgs {
		byDir[p.Dir] = p
		for _, d := range p.TypeErrors {
			t.Errorf("unexpected type error in %q: %s", p.Dir, d)
		}
		if p.TypesPkg == nil || p.TypesInfo == nil {
			t.Errorf("package %q missing type information", p.Dir)
		}
	}
	db := importOf(byDir["b"].TypesPkg, "diamond/d")
	dc := importOf(byDir["c"].TypesPkg, "diamond/d")
	if db == nil || dc == nil {
		t.Fatal("arms of the diamond did not resolve the shared base")
	}
	if db != dc {
		t.Error("diamond base type-checked twice; the import view must be cached")
	}
	if byDir["d"].TypesPkg != db {
		t.Error("the base package's own TypesPkg is not the cached import view")
	}
}

// TestTypeCheckCycle proves an import cycle is reported as a typecheck
// diagnostic instead of hanging or overflowing the resolver.
func TestTypeCheckCycle(t *testing.T) {
	pkgs := loadEngineModule(t, "cycle")
	found := false
	for _, p := range pkgs {
		for _, d := range p.TypeErrors {
			if d.Analyzer != "typecheck" {
				t.Errorf("type error attributed to %q, want typecheck", d.Analyzer)
			}
			if strings.Contains(d.Message, "import cycle") {
				found = true
			}
		}
	}
	if !found {
		t.Error("cyclic module produced no \"import cycle\" diagnostic")
	}
}

// TestTypeCheckBroken proves a package that fails type-checking degrades
// to diagnostics — through TypeCheck and through the full Run pipeline —
// rather than panicking or aborting.
func TestTypeCheckBroken(t *testing.T) {
	pkgs := loadEngineModule(t, "broken")
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) == 0 {
		t.Fatal("broken package produced no type errors")
	}
	for _, d := range p.TypeErrors {
		if d.Analyzer != "typecheck" {
			t.Errorf("type error attributed to %q, want typecheck", d.Analyzer)
		}
	}
	if !strings.Contains(p.TypeErrors[0].Message, "undefined") {
		t.Errorf("unexpected first type error: %s", p.TypeErrors[0])
	}
	if p.TypesPkg == nil {
		t.Error("broken package lost its partial type information")
	}

	// The full pipeline must surface the same failure as diagnostics.
	fresh, _, err := LoadModule(filepath.Join("testdata", "engine", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(fresh, Analyzers())
	found := false
	for _, d := range diags {
		if d.Analyzer == "typecheck" && strings.Contains(d.Message, "undefined") {
			found = true
		}
	}
	if !found {
		t.Errorf("Run over a broken package dropped the typecheck diagnostics: %v", diags)
	}
}
