package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deprecated enforces the deprecation policy from DESIGN §8: an
// identifier whose doc comment carries a "Deprecated:" paragraph keeps
// compiling (external users get a grace window) but gains no new in-repo
// callers — and the existing ones migrate. The analyzer indexes every
// deprecated declaration in the module (functions, methods, consts, vars,
// types) and flags each use, in any package, test files and main packages
// included; the only sanctioned references are the declarations
// themselves and //canal:allow-annotated compatibility tests.
func Deprecated() *Analyzer {
	return &Analyzer{
		Name: "deprecated",
		Doc:  "flag in-repo uses of identifiers documented Deprecated: (type-aware)",
		Run:  runDeprecated,
	}
}

// deprIndex maps a symbol key ("pkgpath\x00Name" or
// "pkgpath\x00Type.Method") to the first line of its deprecation notice.
type deprIndex struct {
	items map[string]string
}

// deprecatedText extracts the "Deprecated:" notice from a doc comment,
// returning its first line ("" when absent).
func deprecatedText(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// BuildDeprecated indexes every Deprecated: declaration in the module.
// Exposed so the runner can build it once for all packages.
func BuildDeprecated(pkgs []*Package) *deprIndex {
	idx := &deprIndex{items: map[string]string{}}
	for _, p := range pkgs {
		path := p.ImportPath()
		for _, sf := range p.Files {
			for _, decl := range sf.AST.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					text := deprecatedText(d.Doc)
					if text == "" {
						continue
					}
					if d.Recv == nil {
						idx.items[path+"\x00"+d.Name.Name] = text
					} else if typeName, _, ok := recvTypeName(d); ok {
						idx.items[path+"\x00"+typeName+"."+d.Name.Name] = text
					}
				case *ast.GenDecl:
					declText := deprecatedText(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if text := firstNonEmpty(deprecatedText(s.Doc), declText); text != "" {
								idx.items[path+"\x00"+s.Name.Name] = text
							}
						case *ast.ValueSpec:
							if text := firstNonEmpty(deprecatedText(s.Doc), declText); text != "" {
								for _, name := range s.Names {
									idx.items[path+"\x00"+name.Name] = text
								}
							}
						}
					}
				}
			}
		}
	}
	return idx
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// deprecatedIdx is set by the runner before analyzers execute; when nil,
// the analyzer indexes only the package under analysis (fixture mode).
var deprecatedIdx *deprIndex

// SetDeprecated installs a module-wide deprecation index (call before Run).
func SetDeprecated(idx *deprIndex) { deprecatedIdx = idx }

// keyForObject renders the index key for a used object, or "" when the
// object kind is never indexed (locals, fields, imported packages).
// Matching is by (package path, name) rather than object identity: the
// engine re-checks test-augmented units, so the same declaration can be
// represented by more than one types.Object (see typecheck.go).
func keyForObject(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				return ""
			}
			return path + "\x00" + named.Obj().Name() + "." + o.Name()
		}
		return path + "\x00" + o.Name()
	case *types.Var:
		if o.IsField() || o.Parent() != o.Pkg().Scope() {
			return ""
		}
		return path + "\x00" + o.Name()
	case *types.Const:
		if o.Parent() != o.Pkg().Scope() {
			return ""
		}
		return path + "\x00" + o.Name()
	case *types.TypeName:
		if o.Parent() != o.Pkg().Scope() {
			return ""
		}
		return path + "\x00" + o.Name()
	}
	return ""
}

func runDeprecated(p *Package, r *Reporter) {
	if p.TypesInfo == nil {
		return
	}
	idx := deprecatedIdx
	if idx == nil {
		idx = BuildDeprecated([]*Package{p})
	}
	if len(idx.items) == 0 {
		return
	}
	for _, sf := range p.Files {
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			key := keyForObject(obj)
			if key == "" {
				return true
			}
			if text, ok := idx.items[key]; ok {
				r.Reportf(id.Pos(), "%s is deprecated: %s", id.Name, text)
			}
			return true
		})
	}
}
