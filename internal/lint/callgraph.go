package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the engine: a CHA-style call
// graph built from the shared types.Info across all three checking units
// (typecheck.go). One node per named function or method; edges for static
// calls, interface-method calls resolved by class-hierarchy analysis
// (every in-module concrete type implementing the interface), and
// function/method values referenced outside call position (a reference is
// treated as a may-call edge, since the value is typically invoked later).
// Function-literal bodies attribute to the enclosing named function, so a
// closure scheduled on the event loop counts as reachable from its
// creator. Calls through plain function-typed variables and fields stay
// unresolved: tracking those needs data flow the engine deliberately does
// not attempt.
//
// While walking each body the builder also records the primitive facts the
// interprocedural analyzers consume — heap allocations (escaping composite
// literals, make/new, append growth, string concatenation and conversions,
// interface boxing at call sites), mutex acquisitions with their
// intraprocedural hold ranges, channel operations, calls into banned
// packages, wall-clock reads, and global math/rand draws.
//
// Nodes are keyed by (package path, receiver, name) strings, never by
// types.Object identity: the augmented and external-test units re-check
// declarations under fresh objects (see typecheck.go), and string keys
// unify them. All node and edge orderings are deterministic (sorted keys,
// source-order edges), so every traversal — and therefore every diagnostic
// and every -callgraph dump — is byte-stable across runs.

// FactKind classifies a primitive behavior observed in a function body.
type FactKind int

const (
	// FactAlloc is a heap allocation (or probable one, e.g. append growth).
	FactAlloc FactKind = iota
	// FactLock is a sync.Mutex/RWMutex acquisition.
	FactLock
	// FactChan is a blocking channel operation (send, receive, select, range).
	FactChan
	// FactBanned is a call into a package banned on hot paths (fmt, reflect,
	// regexp).
	FactBanned
	// FactWallClock is a wall-clock read or wait (time.Now, time.Sleep, ...).
	FactWallClock
	// FactGlobalRand is a draw from the global math/rand source.
	FactGlobalRand
)

// String names the kind for dumps.
func (k FactKind) String() string {
	switch k {
	case FactAlloc:
		return "alloc"
	case FactLock:
		return "lock"
	case FactChan:
		return "chan"
	case FactBanned:
		return "banned"
	case FactWallClock:
		return "wallclock"
	case FactGlobalRand:
		return "globalrand"
	}
	return "?"
}

// Fact is one primitive behavior at one position.
type Fact struct {
	Kind     FactKind
	Pos      token.Pos
	Position token.Position
	// What is the human-readable description ("append may grow its backing
	// array", "calls fmt.Sprintf", "time.Now reads the wall clock", ...).
	What string
}

// CallEdge is one resolved call or function-value reference.
type CallEdge struct {
	Callee   string // key of the callee node (may be absent from the graph)
	Pos      token.Pos
	Position token.Position
	// Iface marks an edge resolved by CHA over an interface method call.
	Iface bool
	// Ref marks a function/method value referenced outside call position.
	Ref bool
}

// LockSite is one mutex acquisition with a resolvable lock class, plus the
// intraprocedural range over which the lock is held (to the matching
// Unlock, or to the end of the body for deferred/absent unlocks).
type LockSite struct {
	// Class identifies the lock across the module: "pkgpath.Type.field"
	// for struct-held mutexes (embedded fields keep their path) or
	// "pkgpath.var" for package-level ones.
	Class    string
	Expr     string // source rendering of the receiver, e.g. "e.mu"
	Read     bool   // RLock rather than Lock
	Pos      token.Pos
	Position token.Position
	// EndOff is the file offset where the hold ends.
	EndOff int
}

// FuncNode is one named function or method of the module.
type FuncNode struct {
	Key      string
	Dir      string // module-relative package directory
	Test     bool   // declared in a _test.go file
	Hot      bool   // annotated //canal:hotpath
	Pos      token.Pos
	Position token.Position
	Calls    []CallEdge
	Facts    []Fact
	Locks    []LockSite
}

// CallGraph is the module's interprocedural index.
type CallGraph struct {
	fset   *token.FileSet
	module string
	Nodes  map[string]*FuncNode
	keys   []string // sorted node keys

	// Lazily computed analyzer findings (module-wide, emitted per package).
	hotDiags  []Diagnostic
	hotDone   bool
	lockDiags []Diagnostic
	lockDone  bool
	tdDiags   []Diagnostic
	tdDone    bool
}

// moduleGraph is set by the runner before analyzers execute; when nil, the
// interprocedural analyzers build a graph over just the package under
// analysis (fixture-test mode).
var moduleGraph *CallGraph

// SetCallGraph installs a module-wide call graph (call before Run).
func SetCallGraph(g *CallGraph) { moduleGraph = g }

// graphFor returns the installed module graph, or builds a single-package
// one for fixture runs.
func graphFor(p *Package) *CallGraph {
	if moduleGraph != nil {
		return moduleGraph
	}
	return BuildCallGraph([]*Package{p})
}

// Keys returns the node keys in sorted order.
func (g *CallGraph) Keys() []string { return g.keys }

// Lookup finds a node by exact key, or by unique suffix match (so the CLI
// accepts "(*Engine).Route" or just "Route").
func (g *CallGraph) Lookup(name string) *FuncNode {
	if n, ok := g.Nodes[name]; ok {
		return n
	}
	var found *FuncNode
	for _, k := range g.keys {
		if strings.HasSuffix(k, "."+name) || strings.HasSuffix(k, ")."+strings.TrimPrefix(name, "(")) {
			if found != nil {
				return nil // ambiguous
			}
			found = g.Nodes[k]
		}
	}
	return found
}

// shortKey strips the module prefix off a node key for messages.
func (g *CallGraph) shortKey(key string) string {
	if rest, ok := strings.CutPrefix(key, g.module+"/"); ok {
		return rest
	}
	return strings.TrimPrefix(key, g.module+".")
}

// hotRoots returns the //canal:hotpath-annotated non-test nodes, sorted.
func (g *CallGraph) hotRoots() []*FuncNode {
	var roots []*FuncNode
	for _, k := range g.keys {
		if n := g.Nodes[k]; n.Hot && !n.Test {
			roots = append(roots, n)
		}
	}
	return roots
}

// walkStep is one BFS predecessor link, for chain reconstruction.
type walkStep struct {
	prev string
	pos  token.Position
}

// reach runs a BFS from start over non-test nodes, honoring filter (nil
// accepts every callee), and returns predecessor links for every visited
// key. Ref edges participate: a referenced function is assumed callable.
func (g *CallGraph) reach(start string, filter func(*FuncNode) bool) map[string]walkStep {
	seen := map[string]walkStep{start: {}}
	queue := []string{start}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		n := g.Nodes[key]
		if n == nil {
			continue
		}
		for _, e := range n.Calls {
			cn := g.Nodes[e.Callee]
			if cn == nil || cn.Test {
				continue
			}
			if filter != nil && !filter(cn) {
				continue
			}
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = walkStep{prev: key, pos: e.Position}
			queue = append(queue, e.Callee)
		}
	}
	return seen
}

// Reachable returns the sorted keys of every function reachable from
// start (excluding start itself), for the -callgraph debug dump.
func (g *CallGraph) Reachable(start string) []string {
	seen := g.reach(start, nil)
	delete(seen, start)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// chain renders the call chain from start to key as "A -> B -> C" using
// short names ("" when key is start itself).
func (g *CallGraph) chain(seen map[string]walkStep, start, key string) string {
	var parts []string
	for k := key; k != start; k = seen[k].prev {
		parts = append(parts, g.shortKey(k))
	}
	parts = append(parts, g.shortKey(start))
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}

// bannedPkgs are the packages hot paths must not call into at request time:
// fmt formats through reflection and allocates; reflect defeats every
// static guarantee; regexp matching allocates and is unbounded.
var bannedPkgs = map[string]bool{"fmt": true, "reflect": true, "regexp": true}

// BuildCallGraph constructs the interprocedural index over the packages.
// The packages must already be type-checked (TypeCheck); packages with
// partial type information degrade to fewer edges, never to wrong ones.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*FuncNode{}}
	if len(pkgs) == 0 {
		return g
	}
	g.fset = pkgs[0].Fset
	g.module = pkgs[0].Module
	if g.module == "" {
		g.module = DefaultModule
	}
	b := &gbuilder{g: g, byPath: map[string]*Package{}}
	ordered := make([]*Package, len(pkgs))
	copy(ordered, pkgs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Dir < ordered[j].Dir })
	for _, p := range ordered {
		b.byPath[p.ImportPath()] = p
	}
	b.indexConcreteTypes(ordered)
	for _, p := range ordered {
		for _, sf := range p.Files {
			for _, decl := range sf.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b.addFunc(p, sf, fd)
			}
		}
	}
	g.keys = make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	return g
}

// gbuilder carries build state.
type gbuilder struct {
	g      *CallGraph
	byPath map[string]*Package
	// concrete holds every non-interface named type in the module, import-
	// view objects first (identity-stable across checking units), in
	// deterministic order, for CHA interface resolution.
	concrete []*types.Named
	// ifaceMemo caches CHA resolutions per (interface, method).
	ifaceMemo map[ifaceQuery][]string
}

type ifaceQuery struct {
	iface  *types.Interface
	method string
}

// indexConcreteTypes collects the module's named non-interface types. The
// import view of each package supplies identity-stable objects; test-only
// types (absent from the import view) are added from Defs as best effort.
func (b *gbuilder) indexConcreteTypes(pkgs []*Package) {
	b.ifaceMemo = map[ifaceQuery][]string{}
	seen := map[string]bool{}
	add := func(tn *types.TypeName) {
		if tn == nil || tn.IsAlias() {
			return
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			return
		}
		key := tn.Pkg().Path() + "." + tn.Name()
		if seen[key] {
			return
		}
		seen[key] = true
		b.concrete = append(b.concrete, named)
	}
	for _, p := range pkgs {
		if p.TypesPkg == nil {
			continue
		}
		scope := p.TypesPkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				add(tn)
			}
		}
	}
	// Test-unit types, in source order.
	for _, p := range pkgs {
		if p.TypesInfo == nil {
			continue
		}
		for _, sf := range p.Files {
			if !sf.Test {
				continue
			}
			for _, decl := range sf.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						if tn, ok := p.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							add(tn)
						}
					}
				}
			}
		}
	}
}

// funcKey renders the unit-independent node key for a function object.
func funcKey(obj *types.Func) string {
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	sig, ok := obj.Type().(*types.Signature)
	if ok {
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			star := ""
			if ptr, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				t = ptr.Elem()
				star = "*"
			}
			if named, isNamed := types.Unalias(t).(*types.Named); isNamed {
				return path + ".(" + star + named.Obj().Name() + ")." + obj.Name()
			}
			return path + ".(?)." + obj.Name()
		}
	}
	return path + "." + obj.Name()
}

// hotpathMarker annotates a function whose body — and everything reachable
// from it — must stay allocation-, lock-, and block-free at request time.
const hotpathMarker = "//canal:hotpath"

// isHotpathDoc reports whether the declaration's doc comment carries the
// //canal:hotpath directive.
func isHotpathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// addFunc creates (or extends, for colliding keys like init) the node for
// one declared function and analyzes its body.
func (b *gbuilder) addFunc(p *Package, sf SourceFile, fd *ast.FuncDecl) {
	key := ""
	if p.TypesInfo != nil {
		if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			key = funcKey(obj)
		}
	}
	if key == "" {
		// Degraded type information: fall back to a syntactic key.
		key = p.ImportPath() + "." + fd.Name.Name
	}
	n := b.g.Nodes[key]
	if n == nil {
		n = &FuncNode{
			Key:      key,
			Dir:      p.Dir,
			Test:     sf.Test,
			Pos:      fd.Pos(),
			Position: p.Fset.Position(fd.Pos()),
		}
		b.g.Nodes[key] = n
	}
	if isHotpathDoc(fd.Doc) {
		n.Hot = true
	}
	fb := &funcBuilder{b: b, p: p, n: n}
	fb.analyze(fd.Body)
}

// funcBuilder walks one function body.
type funcBuilder struct {
	b *gbuilder
	p *Package
	n *FuncNode
	// releases are Unlock/RUnlock calls (expr rendering -> positions),
	// deferred ones excluded, for hold-range matching.
	releases map[string][]token.Pos
	// pending are this body's lock sites awaiting hold-range resolution.
	pending []*LockSite
}

func (fb *funcBuilder) fact(kind FactKind, pos token.Pos, what string) {
	fb.n.Facts = append(fb.n.Facts, Fact{
		Kind:     kind,
		Pos:      pos,
		Position: fb.p.Fset.Position(pos),
		What:     what,
	})
}

func (fb *funcBuilder) edge(callee string, pos token.Pos, iface, ref bool) {
	fb.n.Calls = append(fb.n.Calls, CallEdge{
		Callee:   callee,
		Pos:      pos,
		Position: fb.p.Fset.Position(pos),
		Iface:    iface,
		Ref:      ref,
	})
}

// analyze walks the body, collecting edges, facts, and lock sites, then
// resolves lock hold ranges against the body's Unlock calls.
func (fb *funcBuilder) analyze(body *ast.BlockStmt) {
	fb.releases = map[string][]token.Pos{}
	walkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			fb.call(v, stack)
		case *ast.Ident:
			fb.funcValueRef(v, stack)
		case *ast.SendStmt:
			fb.fact(FactChan, v.Arrow, "channel send may block")
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				fb.fact(FactChan, v.OpPos, "channel receive may block")
			}
		case *ast.SelectStmt:
			fb.fact(FactChan, v.Select, "select blocks on channel operations")
		case *ast.RangeStmt:
			if t := fb.p.typeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fb.fact(FactChan, v.For, "range over a channel blocks")
				}
			}
		case *ast.CompositeLit:
			fb.composite(v, stack)
		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				fb.stringConcat(v, stack)
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 {
				if t := fb.p.typeOf(v.Lhs[0]); t != nil && isStringType(t) {
					fb.fact(FactAlloc, v.TokPos, "string += concatenation allocates")
				}
			}
		}
		return true
	})
	// Resolve hold ranges: the earliest non-deferred release of the same
	// expression after the acquisition ends the hold; otherwise (deferred
	// or missing release) the lock is held to the end of the body.
	bodyEnd := fb.p.Fset.Position(body.End()).Offset
	for _, ls := range fb.pending {
		end := bodyEnd
		for _, rel := range fb.releases[ls.Expr] {
			if rel > ls.Pos {
				if off := fb.p.Fset.Position(rel).Offset; off < end {
					end = off
				}
			}
		}
		ls.EndOff = end
		fb.n.Locks = append(fb.n.Locks, *ls)
	}
}

// call resolves one call expression: edges, banned/nondeterminism facts,
// builtin allocations, conversions, boxing, and lock sites.
func (fb *funcBuilder) call(call *ast.CallExpr, stack []ast.Node) {
	p := fb.p
	fun := ast.Unparen(call.Fun)
	// Conversions (including to interface types, which box).
	if p.TypesInfo != nil {
		if tv, ok := p.TypesInfo.Types[fun]; ok && tv.IsType() {
			fb.conversion(call, tv.Type)
			return
		}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if p.TypesInfo == nil {
			return
		}
		switch obj := p.TypesInfo.Uses[f].(type) {
		case *types.Builtin:
			fb.builtin(obj.Name(), call)
		case *types.Func:
			fb.callee(obj, call, false)
		}
	case *ast.SelectorExpr:
		if p.TypesInfo == nil {
			return
		}
		if sel := p.TypesInfo.Selections[f]; sel != nil {
			if sel.Kind() != types.MethodVal {
				return // field of function type: dynamic, unresolved
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
				fb.ifaceCall(recv, m, call.Lparen, false)
				fb.boxing(call, m)
				return
			}
			fb.lockCall(call, f, sel, m, stack)
			fb.callee(m, call, false)
			return
		}
		// Package-qualified function: pkg.Fn(...).
		if obj, ok := p.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			fb.callee(obj, call, false)
		}
	}
}

// callee records the edge and facts for a resolved concrete callee.
func (fb *funcBuilder) callee(obj *types.Func, call *ast.CallExpr, ref bool) {
	pos := call.Lparen
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	switch {
	case bannedPkgs[path]:
		fb.fact(FactBanned, pos, "calls "+displayFunc(obj))
	case path == "time" && recvOf(obj) == nil && wallClockFuncs[obj.Name()]:
		fb.fact(FactWallClock, pos, "time."+obj.Name()+" reads or waits on the wall clock")
	case (path == "math/rand" || path == "math/rand/v2") && recvOf(obj) == nil && !randConstructors[obj.Name()]:
		fb.fact(FactGlobalRand, pos, "rand."+obj.Name()+" draws from the global math/rand source")
	}
	if fb.inModule(path) {
		fb.edge(funcKey(obj), pos, false, ref)
	}
	if !ref {
		fb.boxing(call, obj)
	}
}

// ifaceCall fans an interface method call out to every in-module concrete
// implementation (class-hierarchy analysis).
func (fb *funcBuilder) ifaceCall(recv types.Type, m *types.Func, pos token.Pos, ref bool) {
	iface, ok := fb.canonicalIface(recv)
	if !ok {
		return
	}
	q := ifaceQuery{iface: iface, method: m.Name()}
	targets, ok := fb.b.ifaceMemo[q]
	if !ok {
		for _, named := range fb.b.concrete {
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				targets = append(targets, funcKey(impl))
			}
		}
		sort.Strings(targets)
		fb.b.ifaceMemo[q] = targets
	}
	for _, t := range targets {
		fb.edge(t, pos, true, ref)
	}
}

// canonicalIface maps an interface type to its import-view object when the
// interface is a named in-module type, so Implements compares method
// signatures against identity-stable objects (see typecheck.go on why the
// augmented units mint fresh ones).
func (fb *funcBuilder) canonicalIface(t types.Type) (*types.Interface, bool) {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			if p, inMod := fb.b.byPath[obj.Pkg().Path()]; inMod && p.TypesPkg != nil {
				if tn, ok := p.TypesPkg.Scope().Lookup(obj.Name()).(*types.TypeName); ok {
					if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
						return iface, true
					}
				}
			}
		}
	}
	iface, ok := t.Underlying().(*types.Interface)
	return iface, ok
}

// funcValueRef records a may-call edge for a function or method referenced
// outside call position (method values, callbacks passed as arguments).
func (fb *funcBuilder) funcValueRef(id *ast.Ident, stack []ast.Node) {
	p := fb.p
	if p.TypesInfo == nil {
		return
	}
	obj, ok := p.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return
	}
	// Skip idents already handled as the function position of a call.
	if len(stack) > 0 {
		parent := stack[len(stack)-1]
		if sel, ok := parent.(*ast.SelectorExpr); ok {
			if sel.Sel != id {
				return // the X of a selector, not the function
			}
			if len(stack) > 1 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
					return
				}
			}
			// Method value: resolve like a call, including CHA fan-out.
			if s := p.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				if recv := s.Recv(); recv != nil && types.IsInterface(recv) {
					fb.ifaceCall(recv, obj, id.Pos(), true)
					return
				}
			}
			fb.refEdge(obj, id.Pos())
			return
		}
		if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == id {
			return
		}
	}
	fb.refEdge(obj, id.Pos())
}

func (fb *funcBuilder) refEdge(obj *types.Func, pos token.Pos) {
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	if bannedPkgs[path] {
		fb.fact(FactBanned, pos, "references "+displayFunc(obj))
	}
	if fb.inModule(path) {
		fb.edge(funcKey(obj), pos, false, true)
	}
}

// inModule reports whether a package path belongs to the module under
// analysis.
func (fb *funcBuilder) inModule(path string) bool {
	mod := fb.b.g.module
	return path == mod || strings.HasPrefix(path, mod+"/") ||
		strings.HasSuffix(path, "_test") && (strings.TrimSuffix(path, "_test") == mod || strings.HasPrefix(path, mod+"/"))
}

// builtin records allocation facts for make/new/append.
func (fb *funcBuilder) builtin(name string, call *ast.CallExpr) {
	switch name {
	case "make":
		fb.fact(FactAlloc, call.Lparen, "make allocates")
	case "new":
		fb.fact(FactAlloc, call.Lparen, "new allocates")
	case "append":
		fb.fact(FactAlloc, call.Lparen, "append may grow its backing array")
	}
}

// conversion records allocation facts for allocating conversions: string
// <-> []byte/[]rune, and boxing into an interface type.
func (fb *funcBuilder) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := fb.p.typeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target) {
		if !types.IsInterface(src) && boxAllocates(src) && !fb.p.isConst(call.Args[0]) {
			fb.fact(FactAlloc, call.Lparen, "conversion boxes "+src.String()+" into an interface")
		}
		return
	}
	if isStringType(target) && isByteOrRuneSlice(src) || isByteOrRuneSlice(target) && isStringType(src) {
		fb.fact(FactAlloc, call.Lparen, "string/slice conversion copies and allocates")
	}
}

// boxing flags arguments whose concrete values box into interface
// parameters at the call site.
func (fb *funcBuilder) boxing(call *ast.CallExpr, obj *types.Func) {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := fb.p.typeOf(arg)
		if at == nil || types.IsInterface(at) || !boxAllocates(at) {
			continue
		}
		if tv, ok := fb.p.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		fb.fact(FactAlloc, arg.Pos(), "argument boxes "+at.String()+" into interface parameter of "+displayFunc(obj))
	}
}

// composite records allocation facts for composite literals: slice and map
// literals allocate their backing store; a literal whose address is taken
// escapes to the heap.
func (fb *funcBuilder) composite(cl *ast.CompositeLit, stack []ast.Node) {
	if len(stack) > 0 {
		if _, inLit := stack[len(stack)-1].(*ast.CompositeLit); inLit {
			return // element of an outer literal; the outer one is the alloc
		}
		if kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr); ok && len(stack) > 1 {
			if _, inLit := stack[len(stack)-2].(*ast.CompositeLit); inLit && kv.Value == cl {
				return
			}
		}
		if ue, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && ue.Op == token.AND {
			fb.fact(FactAlloc, ue.OpPos, "&composite literal escapes to the heap")
			return
		}
	}
	t := fb.p.typeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		fb.fact(FactAlloc, cl.Lbrace, "slice literal allocates its backing array")
	case *types.Map:
		fb.fact(FactAlloc, cl.Lbrace, "map literal allocates")
	}
}

// stringConcat flags runtime string concatenation (topmost + of a chain).
func (fb *funcBuilder) stringConcat(be *ast.BinaryExpr, stack []ast.Node) {
	t := fb.p.typeOf(be)
	if t == nil || !isStringType(t) || fb.p.isConst(be) {
		return
	}
	if len(stack) > 0 {
		if parent, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && parent.Op == token.ADD {
			if pt := fb.p.typeOf(parent); pt != nil && isStringType(pt) {
				return // inner term of a larger concatenation
			}
		}
	}
	fb.fact(FactAlloc, be.OpPos, "string concatenation allocates")
}

// lockCall records lock facts and classed lock sites for sync.Mutex and
// sync.RWMutex acquisitions, and release positions for hold matching.
func (fb *funcBuilder) lockCall(call *ast.CallExpr, sel *ast.SelectorExpr, s *types.Selection, m *types.Func, stack []ast.Node) {
	if m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return
	}
	recv := recvOf(m)
	if recv == nil {
		return
	}
	rt := recv.Type()
	if ptr, ok := types.Unalias(rt).(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := types.Unalias(rt).(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return
	}
	expr := exprString(sel.X)
	switch m.Name() {
	case "Unlock", "RUnlock":
		// A deferred release holds the lock to the end of the body, so it
		// must not end the textual hold range.
		deferred := false
		if len(stack) > 0 {
			if ds, ok := stack[len(stack)-1].(*ast.DeferStmt); ok && ds.Call == call {
				deferred = true
			}
		}
		if !deferred {
			fb.releases[expr] = append(fb.releases[expr], call.Lparen)
		}
		return
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return
	}
	read := m.Name() == "RLock" || m.Name() == "TryRLock"
	what := "acquires " + expr
	if read {
		what = "read-locks " + expr
	}
	fb.fact(FactLock, call.Lparen, what+" (sync."+named.Obj().Name()+")")
	class, ok := fb.lockClass(sel, s)
	if !ok {
		return
	}
	fb.pending = append(fb.pending, &LockSite{
		Class:    class,
		Expr:     expr,
		Read:     read,
		Pos:      call.Lparen,
		Position: fb.p.Fset.Position(call.Lparen),
	})
}

// lockClass resolves the module-wide identity of the locked mutex: the
// named type and field path holding it, or the package-level variable.
// Locks held in locals or unresolvable expressions return ok=false (they
// still produce FactLock facts, just no ordering class).
func (fb *funcBuilder) lockClass(sel *ast.SelectorExpr, s *types.Selection) (string, bool) {
	idx := s.Index()
	if len(idx) > 1 {
		// The receiver embeds the mutex: walk the field path.
		return classFromFieldPath(s.Recv(), idx[:len(idx)-1])
	}
	// sel.X is the mutex value itself.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if fs := fb.p.TypesInfo.Selections[x]; fs != nil && fs.Kind() == types.FieldVal {
			return classFromFieldPath(fs.Recv(), fs.Index())
		}
		// Package-qualified variable: pkg.Mu.
		if v, ok := fb.p.TypesInfo.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := fb.p.TypesInfo.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

// classFromFieldPath renders "pkgpath.Type.field[.field...]" for a field
// selection path starting at recv.
func classFromFieldPath(recv types.Type, idx []int) (string, bool) {
	t := recv
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	class := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	cur := named.Underlying()
	for _, i := range idx {
		st, ok := cur.(*types.Struct)
		if !ok {
			if ptr, isPtr := cur.(*types.Pointer); isPtr {
				st, ok = ptr.Elem().Underlying().(*types.Struct)
			}
			if !ok {
				return "", false
			}
		}
		if i >= st.NumFields() {
			return "", false
		}
		f := st.Field(i)
		class += "." + f.Name()
		cur = f.Type().Underlying()
	}
	return class, true
}

// recvOf returns a function's receiver variable, or nil.
func recvOf(obj *types.Func) *types.Var {
	if sig, ok := obj.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

// displayFunc renders a callee for messages: "fmt.Sprintf",
// "regexp.(*Regexp).MatchString".
func displayFunc(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	if recv := recvOf(obj); recv != nil {
		t := recv.Type()
		star := ""
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + "(" + star + named.Obj().Name() + ")." + obj.Name()
		}
	}
	return pkg + obj.Name()
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune under the hood.
func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxAllocates reports whether boxing a value of type t into an interface
// heap-allocates. Pointer-shaped types (pointers, channels, maps,
// functions, unsafe pointers) fit the interface word directly.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}
