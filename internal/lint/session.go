package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Session caches the expensive half of a canalvet invocation — parsing and
// whole-module type-checking — across repeated analyzer runs (the -runs
// determinism gate, -fix verification reruns). Validity is keyed by
// per-directory source-content hashes: every analyzable directory's .go
// files are hashed, and if any directory's digest changed since the last
// Load, the whole module is reloaded and re-type-checked.
//
// Reuse is deliberately all-or-nothing at the module level even though the
// key is per-directory: the engine shares one types.Info across every
// package (typecheck.go), so type identity spans package boundaries and a
// single stale directory would poison every summary built over it. The
// per-directory hashing still pays for itself — it is what makes the cache
// sound, and hashing is ~100x cheaper than type-checking.
//
// What the cache does NOT cover, by design: the call graph, the taint
// engine, and analyzer findings are rebuilt fresh inside every Run. A
// cached analysis result would make the -runs N determinism check vacuous —
// the second run must recompute everything downstream of the parse to prove
// byte-stability, not replay a memo.
type Session struct {
	root string
	pkgs []*Package
	hash string
}

// NewSession prepares a cache for repeated loads of the module at root.
func NewSession(root string) *Session {
	return &Session{root: root}
}

// Load returns the module's parsed, type-checked packages, reusing the
// previous load when no source file changed. reused reports whether the
// cache was hit.
func (s *Session) Load() (pkgs []*Package, reused bool, err error) {
	h, err := s.contentHash()
	if err != nil {
		return nil, false, err
	}
	if s.pkgs != nil && h == s.hash {
		return s.pkgs, true, nil
	}
	pkgs, _, err = LoadModule(s.root)
	if err != nil {
		return nil, false, err
	}
	TypeCheck(pkgs)
	s.pkgs, s.hash = pkgs, h
	return pkgs, false, nil
}

// contentHash digests every analyzable directory: the sorted relative file
// names and contents of its .go files, skipping the same directories and
// files the loader does.
func (s *Session) contentHash() (string, error) {
	h := sha256.New()
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != s.root && skipDirName(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		io.WriteString(h, filepath.ToSlash(rel))
		io.WriteString(h, "\x00")
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return err
		}
		io.WriteString(h, "\x00")
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// dirHashes returns each analyzable directory's own digest, sorted by
// directory — the per-directory view of the cache key, used by tests and
// the -timings diagnostics to show what changed.
func (s *Session) dirHashes() (map[string]string, error) {
	perDir := map[string][]string{}
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != s.root && skipDirName(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		rel, err := filepath.Rel(s.root, filepath.Dir(path))
		if err != nil {
			return err
		}
		perDir[filepath.ToSlash(rel)] = append(perDir[filepath.ToSlash(rel)], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(perDir))
	for dir, files := range perDir {
		sort.Strings(files)
		h := sha256.New()
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			io.WriteString(h, filepath.Base(f))
			io.WriteString(h, "\x00")
			h.Write(data)
			io.WriteString(h, "\x00")
		}
		out[dir] = hex.EncodeToString(h.Sum(nil))
	}
	return out, nil
}

// skipDirName reports whether the loader (and therefore the session hash)
// ignores a directory of this name.
func skipDirName(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}
