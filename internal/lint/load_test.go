package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestBuildExcluded(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", false},
		{"race", "//go:build race\n\npackage p\n", true},
		{"not race", "//go:build !race\n\npackage p\n", false},
		{"host os", "//go:build " + runtime.GOOS + "\n\npackage p\n", false},
		{"other os", "//go:build plan9\n\npackage p\n", true},
		{"lang version", "//go:build go1.21\n\npackage p\n", false},
		{"and mixed", "//go:build race && " + runtime.GOOS + "\n\npackage p\n", true},
		{"or mixed", "//go:build race || " + runtime.GOOS + "\n\npackage p\n", false},
		{"after package clause ignored", "package p\n\n//go:build race\n", false},
		{"doc comment mention ignored", "// The //go:build race form is documented here.\npackage p\n", false},
	}
	for _, c := range cases {
		if got := buildExcluded([]byte(c.src)); got != c.want {
			t.Errorf("%s: buildExcluded = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLoadSkipsExcludedBuildFiles loads a package holding a tag-disjoint
// file pair declaring the same constant — legal under go build, a
// redeclaration if both files land in one checking unit — and asserts the
// excluded file never enters the package.
func TestLoadSkipsExcludedBuildFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("on.go", "//go:build race\n\npackage p\n\nconst flag = true\n")
	write("off.go", "//go:build !race\n\npackage p\n\nconst flag = false\n")
	pkg, err := LoadDir(dir, "internal/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the !race side)", len(pkg.Files))
	}
	if got := filepath.Base(pkg.Files[0].Name); got != "off.go" {
		t.Fatalf("kept %s, want off.go", got)
	}
	if diags := Run([]*Package{pkg}, Analyzers()); len(diags) != 0 {
		t.Fatalf("tag-disjoint pair still produced diagnostics: %v", diags)
	}
}
