package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds a module-wide lock-acquisition-order graph and reports
// cycles. Nodes are lock classes — "pkg.Type.field" for struct-held
// sync.Mutex/RWMutex (embedded fields keep their path) or "pkg.var" for
// package-level ones. An edge A → B is recorded when a function acquires B
// (directly, or anywhere down its call graph) while holding A, with the
// hold range approximated intraprocedurally (acquisition to the earliest
// non-deferred Unlock of the same expression, else end of body). Two
// classes locked in both orders on different paths can interleave into a
// deadlock at runtime; the diagnostic spells out both acquisition chains.
//
// The class abstraction conflates instances: distinct values of the same
// type share a class, so nested same-class acquisitions through different
// expressions are not treated as self-cycles (instance identity is beyond
// static reach). Re-acquiring the *same expression* while held, directly
// or through a call chain, is reported — for a Mutex that is a guaranteed
// self-deadlock, and a nested RLock deadlocks once a writer queues between
// the two.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "report lock-order cycles and self-reacquisition across the module-wide lock-acquisition graph",
		Run:  runLockOrder,
	}
}

func runLockOrder(p *Package, r *Reporter) {
	for _, d := range graphFor(p).lockorderFindings() {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}

// lockWitness is the evidence for one lock-graph edge: holder acquired
// `from` and then — directly at `second`, or by calling `callee` — took
// `to` while still holding it.
type lockWitness struct {
	holder   string
	from     LockSite
	to       string
	position token.Position // where the second acquisition (or the call) happens
	callee   string         // "" when the second lock is taken directly in holder
	second   token.Position // direct second acquisition site (callee == "")
}

// lockorderFindings computes the module-wide lockorder diagnostics once.
func (g *CallGraph) lockorderFindings() []Diagnostic {
	if g.lockDone {
		return g.lockDiags
	}
	g.lockDone = true

	reachMemo := map[string]map[string]walkStep{}
	reachOf := func(key string) map[string]walkStep {
		r, ok := reachMemo[key]
		if !ok {
			r = g.reach(key, nil)
			reachMemo[key] = r
		}
		return r
	}
	// taOf: lock classes acquired anywhere in the call graph below key
	// (including key itself), test nodes excluded.
	taMemo := map[string]map[string]bool{}
	taOf := func(key string) map[string]bool {
		t, ok := taMemo[key]
		if ok {
			return t
		}
		t = map[string]bool{}
		for k := range reachOf(key) {
			n := g.Nodes[k]
			if n == nil || n.Test {
				continue
			}
			for _, ls := range n.Locks {
				t[ls.Class] = true
			}
		}
		taMemo[key] = t
		return t
	}

	// Build the class graph. Deterministic: nodes in sorted key order, lock
	// sites and call edges in source order, transitive classes sorted; the
	// first witness for an (A, B) edge wins.
	adj := map[string]map[string]*lockWitness{}
	addEdge := func(w *lockWitness) {
		m := adj[w.from.Class]
		if m == nil {
			m = map[string]*lockWitness{}
			adj[w.from.Class] = m
		}
		if m[w.to] == nil {
			m[w.to] = w
		}
	}
	for _, key := range g.keys {
		n := g.Nodes[key]
		if n.Test {
			continue
		}
		for i := range n.Locks {
			held := n.Locks[i]
			// Direct nested acquisitions inside the hold range.
			for j := range n.Locks {
				next := n.Locks[j]
				if next.Pos <= held.Pos || next.Position.Offset >= held.EndOff {
					continue
				}
				if next.Expr == held.Expr {
					what := "self-deadlock: " + held.Expr + " is already held (acquired at " +
						baseLine(held.Position.Filename, held.Position.Line) + ") when locked again"
					if held.Read && next.Read {
						what = "nested RLock of " + held.Expr + " (read-locked at " +
							baseLine(held.Position.Filename, held.Position.Line) +
							") deadlocks once a writer queues between the two"
					}
					g.lockDiags = append(g.lockDiags, Diagnostic{Pos: next.Position, Message: what})
					continue
				}
				if next.Class == held.Class {
					continue // distinct instances of one class: no order defined
				}
				addEdge(&lockWitness{
					holder:   key,
					from:     held,
					to:       next.Class,
					position: next.Position,
					second:   next.Position,
				})
			}
			// Calls made while holding: everything the callee's subgraph
			// locks is ordered after the held class.
			for _, e := range n.Calls {
				if e.Position.Filename != held.Position.Filename ||
					e.Position.Offset <= held.Position.Offset || e.Position.Offset >= held.EndOff {
					continue
				}
				cn := g.Nodes[e.Callee]
				if cn == nil || cn.Test {
					continue
				}
				classes := make([]string, 0, len(taOf(e.Callee)))
				for c := range taOf(e.Callee) {
					classes = append(classes, c)
				}
				sort.Strings(classes)
				for _, c := range classes {
					if c == held.Class {
						chain, leaf := g.lockLeaf(e.Callee, c, reachOf)
						g.lockDiags = append(g.lockDiags, Diagnostic{
							Pos: e.Position,
							Message: fmt.Sprintf("call into %s reacquires %s held since %s (chain %s, locked at %s): potential self-deadlock",
								g.shortKey(e.Callee), g.shortKey(c),
								baseLine(held.Position.Filename, held.Position.Line),
								chain, baseLine(leaf.Filename, leaf.Line)),
						})
						continue
					}
					addEdge(&lockWitness{
						holder:   key,
						from:     held,
						to:       c,
						position: e.Position,
						callee:   e.Callee,
					})
				}
			}
		}
	}

	// Class-level reachability, then report each direct edge that closes a
	// cycle: A → B directly while B reaches A.
	classes := make([]string, 0, len(adj))
	for c := range adj {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	creach := map[string]map[string]bool{}
	for _, c := range classes {
		seen := map[string]bool{}
		queue := []string{c}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			targets := make([]string, 0, len(adj[cur]))
			for t := range adj[cur] {
				targets = append(targets, t)
			}
			sort.Strings(targets)
			for _, t := range targets {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
		creach[c] = seen
	}
	for _, a := range classes {
		targets := make([]string, 0, len(adj[a]))
		for t := range adj[a] {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, bc := range targets {
			if bc == a || !creach[bc][a] {
				continue
			}
			w := adj[a][bc]
			g.lockDiags = append(g.lockDiags, Diagnostic{
				Pos: w.position,
				Message: fmt.Sprintf("lock-order cycle between %s and %s: %s; reverse order: %s — the two orders can interleave into a deadlock",
					g.shortKey(a), g.shortKey(bc),
					g.legString(w, reachOf),
					g.pathString(bc, a, adj, reachOf)),
			})
		}
	}
	return g.lockDiags
}

// lockLeaf finds, below start, the function that directly acquires class,
// returning the call chain to it and the acquisition position.
func (g *CallGraph) lockLeaf(start, class string, reachOf func(string) map[string]walkStep) (string, token.Position) {
	seen := reachOf(start)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := g.Nodes[k]
		if n == nil || n.Test {
			continue
		}
		for _, ls := range n.Locks {
			if ls.Class == class {
				return g.chain(seen, start, k), ls.Position
			}
		}
	}
	return g.shortKey(start), g.Nodes[start].Position
}

// legString renders one edge's evidence: where the first lock is held and
// how the second is reached.
func (g *CallGraph) legString(w *lockWitness, reachOf func(string) map[string]walkStep) string {
	s := fmt.Sprintf("%s holds %s (%s) then takes %s",
		g.shortKey(w.holder), g.shortKey(w.from.Class),
		baseLine(w.from.Position.Filename, w.from.Position.Line),
		g.shortKey(w.to))
	if w.callee == "" {
		return s + " at " + baseLine(w.second.Filename, w.second.Line)
	}
	chain, leaf := g.lockLeaf(w.callee, w.to, reachOf)
	return s + fmt.Sprintf(" via %s (%s)", chain, baseLine(leaf.Filename, leaf.Line))
}

// pathString renders the reverse direction of a cycle as its class-edge
// hops, each with the function and position that witnesses it.
func (g *CallGraph) pathString(from, to string, adj map[string]map[string]*lockWitness, reachOf func(string) map[string]walkStep) string {
	// BFS over the class graph for the shortest from → to path.
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 && prev[to] == "" && to != from {
		cur := queue[0]
		queue = queue[1:]
		targets := make([]string, 0, len(adj[cur]))
		for t := range adj[cur] {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, t := range targets {
			if _, ok := prev[t]; !ok {
				prev[t] = cur
				queue = append(queue, t)
			}
		}
	}
	var hops []string
	for cur := to; cur != from; {
		p := prev[cur]
		if p == "" && cur != from {
			return "(unwitnessed)" // should not happen: caller checked reachability
		}
		w := adj[p][cur]
		hops = append(hops, fmt.Sprintf("%s then %s in %s (%s)",
			g.shortKey(p), g.shortKey(cur), g.shortKey(w.holder),
			baseLine(w.position.Filename, w.position.Line)))
		cur = p
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return strings.Join(hops, ", ")
}
