package lint

import (
	"go/ast"
	"go/token"
)

// LockSafe enforces two pieces of lock discipline:
//
//  1. In a function with multiple return paths, a mutex taken with Lock()
//     must be released by defer Unlock() — or every return between Lock and
//     Unlock is a leak that deadlocks the next caller. The check is a
//     source-order scan: a return statement reached while a lock is held
//     (no intervening Unlock, no deferred Unlock registered) is flagged.
//  2. Structs carrying a sync.Mutex/RWMutex (directly, embedded, or through
//     another mutex-bearing struct of the same package) must not be passed
//     or received by value: the copy's mutex state is meaningless and the
//     original's protection silently vanishes.
func LockSafe() *Analyzer {
	return &Analyzer{
		Name: "locksafe",
		Doc:  "Lock without defer Unlock across multiple return paths; mutex-bearing structs by value",
		Run:  runLockSafe,
	}
}

func runLockSafe(p *Package, r *Reporter) {
	bearers := mutexBearers(p)
	for _, sf := range p.Files {
		forEachFunc(sf.AST, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkValueMutex(fd, bearers, r)
			checkLockPaths(body, r)
		})
		// Function literals get the same Lock/return scan, each at its own
		// nesting level (checkLockPaths does not descend into inner literals,
		// so visiting every literal here scans each body exactly once).
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkLockPaths(fl.Body, r)
			}
			return true
		})
	}
}

// mutexBearers returns the names of package-local struct types that contain
// a sync.Mutex or sync.RWMutex anywhere in their (package-local) field
// closure.
func mutexBearers(p *Package) map[string]bool {
	type structInfo struct {
		direct bool     // has a sync.(RW)Mutex field or embeds one
		refs   []string // package-local named field types
	}
	infos := map[string]structInfo{}
	for _, sf := range p.Files {
		syncName, hasSync := importName(sf.AST, "sync")
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := structInfo{}
			for _, f := range st.Fields.List {
				t := f.Type
				if sel, ok := t.(*ast.SelectorExpr); ok && hasSync {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == syncName &&
						(sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex") {
						info.direct = true
					}
					continue
				}
				if id, ok := t.(*ast.Ident); ok {
					info.refs = append(info.refs, id.Name)
				}
			}
			infos[ts.Name.Name] = info
			return true
		})
	}
	out := map[string]bool{}
	var bears func(name string, seen map[string]bool) bool
	bears = func(name string, seen map[string]bool) bool {
		if out[name] {
			return true
		}
		if seen[name] {
			return false
		}
		seen[name] = true
		info, ok := infos[name]
		if !ok {
			return false
		}
		if info.direct {
			return true
		}
		for _, ref := range info.refs {
			if bears(ref, seen) {
				return true
			}
		}
		return false
	}
	for name := range infos {
		if bears(name, map[string]bool{}) {
			out[name] = true
		}
	}
	return out
}

// checkValueMutex flags value receivers and value parameters of
// mutex-bearing types.
func checkValueMutex(fd *ast.FuncDecl, bearers map[string]bool, r *Reporter) {
	check := func(f *ast.Field, what string) {
		id, ok := f.Type.(*ast.Ident)
		if !ok || !bearers[id.Name] {
			return
		}
		r.Reportf(f.Type.Pos(), "%s passes mutex-bearing struct %s by value; use *%s so the lock still guards shared state", what, id.Name, id.Name)
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			check(f, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			check(f, "parameter")
		}
	}
}

// lockEvent is one Lock/Unlock/defer-Unlock/return in source order.
type lockEvent struct {
	kind   int // 0 lock, 1 unlock, 2 defer-unlock, 3 return
	target string
	read   bool // RLock/RUnlock
	pos    token.Pos
}

// checkLockPaths runs the linear lock-state scan over one function body.
// Nested function literals are scanned separately (their returns do not
// return from the enclosing function), so they are skipped here — except
// deferred closures, whose Unlock calls count as deferred unlocks.
func checkLockPaths(body *ast.BlockStmt, r *Reporter) {
	var events []lockEvent
	collect := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				return false // separate scan; returns inside don't exit us
			case *ast.DeferStmt:
				// defer x.Unlock() or defer func(){ ...Unlock()... }()
				if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
					collectDeferredUnlocks(fl.Body, &events)
					return false
				}
				if sel, ok := v.Call.Fun.(*ast.SelectorExpr); ok {
					if kind, read, isLock := lockKind(sel.Sel.Name); isLock && kind == 1 {
						events = append(events, lockEvent{kind: 2, target: exprString(sel.X), read: read, pos: v.Pos()})
					}
				}
				return false
			case *ast.CallExpr:
				if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
					if kind, read, isLock := lockKind(sel.Sel.Name); isLock {
						events = append(events, lockEvent{kind: kind, target: exprString(sel.X), read: read, pos: v.Pos()})
					}
				}
			case *ast.ReturnStmt:
				events = append(events, lockEvent{kind: 3, pos: v.Pos()})
			}
			return true
		})
	}
	collect(body)

	type lockKey struct {
		target string
		read   bool
	}
	held := map[lockKey]token.Pos{}
	deferredSafe := map[lockKey]bool{}
	for _, ev := range events {
		key := lockKey{ev.target, ev.read}
		switch ev.kind {
		case 0:
			held[key] = ev.pos
		case 1:
			delete(held, key)
		case 2:
			deferredSafe[key] = true
		case 3:
			for k, lockPos := range held {
				if deferredSafe[k] {
					continue
				}
				r.Reportf(lockPos, "%s is locked here but a return path may exit without unlocking; use defer %s.Unlock()", k.target, k.target)
				delete(held, k) // one report per Lock site
			}
		}
	}
}

// collectDeferredUnlocks records Unlock calls inside a deferred closure.
func collectDeferredUnlocks(body *ast.BlockStmt, events *[]lockEvent) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if kind, read, isLock := lockKind(sel.Sel.Name); isLock && kind == 1 {
				*events = append(*events, lockEvent{kind: 2, target: exprString(sel.X), read: read, pos: call.Pos()})
			}
		}
		return true
	})
}

// lockKind classifies a method name: kind 0 for Lock/RLock, 1 for
// Unlock/RUnlock; read marks the R variants.
func lockKind(name string) (kind int, read, ok bool) {
	switch name {
	case "Lock":
		return 0, false, true
	case "RLock":
		return 0, true, true
	case "Unlock":
		return 1, false, true
	case "RUnlock":
		return 1, true, true
	}
	return 0, false, false
}
