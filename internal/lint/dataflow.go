package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the dataflow layer of the engine: a deterministic,
// interprocedural taint analysis that statically audits tenant isolation on
// the request path. It is flow-insensitive (a function body is a monotone
// set of transfer rules iterated to a fixpoint, not a CFG) but field- and
// call-sensitive: struct fields of local values are tracked as separate
// cells, and calls go through per-function summaries computed bottom-up
// over the strongly connected components of the v3 call graph
// (callgraph.go), so taint crosses function boundaries without ever
// re-walking a callee.
//
// Two taint kinds flow:
//
//	identity  the tenant key itself (l7.Request.Tenant, policy.Query.
//	          SrcTenant, the X-Canal-Tenant header) — WHO the request is for
//	payload   request-derived data (paths, headers, bodies, error text
//	          computed from them) — WHAT the request carried
//
// The distinction is the whole analysis: tenant data leaving the request's
// own context (a response writer, the shared access log, package-level
// state) is fine exactly when the tenant key travels with it — a log entry
// carrying Tenant:, a cache indexed by the tenant — and a leak when the
// payload travels alone. Three analyzers consume the engine:
//
//	tenantflow  payload-tainted values reaching a sink with no identity
//	            taint alongside (reported with the propagation chain)
//	sharedmut   package-level mutable state written on the request path
//	            without a lock (from the v3 lock facts) or a tenant-keyed
//	            index
//	poolbleed   sync.Pool values Put back without a reset, handing one
//	            request's bytes to the next
//
// Audited isolation points are declared on the function:
//
//	//canal:boundary <reason>
//
// A boundary function's body is exempt and its summary is clean: taint
// does not propagate through it. Unlike //canal:allow, a boundary is a
// declaration about a design point, not a line suppression, so it has no
// staleness lifecycle; ParseDirectives still rejects one with no reason.
//
// Determinism: functions are analyzed in sorted key order, SCCs come out
// of Tarjan's algorithm driven by that order, summary sink lists are
// deduplicated by value, and every emitted diagnostic is positioned —
// Run's final sort makes the output byte-stable across runs, which
// verify.sh and CI enforce by comparing two fresh runs.
//
// Scope: _test.go files and package main are out of scope by design — the
// engine guards the library request path (gateway, l7, policy, admission,
// trace, federation), not demo binaries or test fakes. Interface-method
// and function-value calls are handled conservatively: the result carries
// the union of the argument taints, with no summary fan-out.

// taintKind is a bitmask of the two taint colors.
type taintKind uint8

const (
	// taintIdentity marks the tenant key itself.
	taintIdentity taintKind = 1 << iota
	// taintPayload marks request-derived data.
	taintPayload
)

func (k taintKind) String() string {
	switch {
	case k&taintIdentity != 0 && k&taintPayload != 0:
		return "identity|payload"
	case k&taintIdentity != 0:
		return "identity"
	case k&taintPayload != 0:
		return "payload"
	}
	return "none"
}

// paramSet is a bitmask over a function's parameter slots: slot 0 is the
// receiver when there is one, then the declared parameters in order. Slots
// past 63 are not tracked (no function in this module comes close).
type paramSet uint64

func (s paramSet) String() string {
	if s == 0 {
		return "{}"
	}
	var parts []string
	for i := 0; i < 64; i++ {
		if s&(1<<i) != 0 {
			parts = append(parts, fmt.Sprintf("%d", i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// mark is the taint lattice value of one cell: which kinds have reached it,
// which of the enclosing function's parameters it derives from, and the
// first source that colored it (for messages). Merging is a monotone union;
// the first source wins, which is deterministic because every walk order is.
type mark struct {
	kinds  taintKind
	params paramSet
	src    string
	srcPos token.Position
}

func (m mark) union(o mark) mark {
	m.kinds |= o.kinds
	m.params |= o.params
	if m.src == "" {
		m.src, m.srcPos = o.src, o.srcPos
	}
	return m
}

func (m mark) empty() bool { return m.kinds == 0 && m.params == 0 }

// sourceTypes maps the module's taint-source struct types to per-field
// kinds; the "" entry is the default for unlisted fields. The table is
// keyed by the canalmesh import paths, so fixture mini-modules posing as
// module canalmesh exercise the same sources the real module does.
var sourceTypes = map[string]map[string]taintKind{
	"canalmesh/internal/l7.Request": {
		"Tenant": taintIdentity,
		"":       taintPayload,
	},
	"canalmesh/internal/policy.Query": {
		"SrcTenant": taintIdentity,
		"":          taintPayload,
	},
	"canalmesh/internal/admission.tenantQueue": {
		"tenant": taintIdentity,
		"":       taintPayload,
	},
	"net/http.Request": {
		"": taintPayload,
	},
}

// taintSinks maps callee keys (funcKey strings) to sink descriptions:
// calls through which tenant-derived data leaves the request's own
// context. A sink call is keyed — and therefore fine — when an
// identity-tainted value travels in the same call.
var taintSinks = map[string]string{
	"net/http.Error":                                       "http.Error response write",
	"net/http.(ResponseWriter).Write":                      "response body write",
	"canalmesh/internal/telemetry.(*AccessLog).Log":        "the shared access log",
	"canalmesh/internal/trace.(*Tracer).Start":             "the shared trace collector",
	"canalmesh/internal/trace.(*Tracer).StartRemote":       "the shared trace collector",
	"canalmesh/internal/trace.(*Tracer).StartTenant":       "the shared trace collector",
	"canalmesh/internal/trace.(*Tracer).StartRemoteTenant": "the shared trace collector",
}

// headerGetKey is net/http.(Header).Get: identity when asked for the
// tenant header by constant, payload otherwise.
const headerGetKey = "net/http.(Header).Get"

// tenantHeaderValue mirrors canal.HeaderTenant; the engine matches the
// constant's value, not the constant, so it works in any package.
const tenantHeaderValue = "X-Canal-Tenant"

// poolPutKey is the sync.Pool return path poolbleed guards.
const poolPutKey = "sync.(*Pool).Put"

// boundaryMarker declares an audited isolation point on a function.
const boundaryMarker = "//canal:boundary"

// boundaryReason extracts a well-formed boundary reason from a doc
// comment ("" when absent or malformed; ParseDirectives reports the
// malformed case).
func boundaryReason(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, boundaryMarker)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		return strings.TrimSpace(rest)
	}
	return ""
}

// paramSink is one sink reachable from a function, still conditional on
// the caller: it fires when any parameter in params carries payload taint
// into the call. sink includes the sink's position; chain is the call path
// from this function (exclusive) down to the sink's function.
type paramSink struct {
	params paramSet
	sink   string
	chain  string
}

// taintSummary is the memoized interprocedural behavior of one function.
type taintSummary struct {
	key       string
	boundary  bool
	hasSource bool
	// resultKinds/resultSrc: taint originating inside (sources read by the
	// function or its callees) that flows to any result.
	resultKinds  taintKind
	resultSrc    string
	resultSrcPos token.Position
	// resultParams: parameter slots whose taint flows to any result.
	resultParams paramSet
	paramSinks   []paramSink
	sinkSeen     map[string]bool
}

func (s *taintSummary) addParamSink(params paramSet, sink, chain string) bool {
	key := fmt.Sprintf("%x\x00%s", uint64(params), sink)
	if s.sinkSeen[key] {
		return false
	}
	if s.sinkSeen == nil {
		s.sinkSeen = map[string]bool{}
	}
	s.sinkSeen[key] = true
	s.paramSinks = append(s.paramSinks, paramSink{params: params, sink: sink, chain: chain})
	return true
}

// taintFn is one analyzable function body.
type taintFn struct {
	p        *Package
	fd       *ast.FuncDecl
	key      string
	boundary string
	walker   *taintWalker
}

// globalWrite is one recorded write to package-level state, for sharedmut
// and the tenantflow cache rules.
type globalWrite struct {
	class    string // pkgpath.var rendering of the written variable
	pos      token.Pos
	position token.Position
	locked   bool // a v3 LockSite hold range covers the write
	keyed    bool // map store indexed by an identity-tainted key
	value    mark // taint of the stored value
}

// TaintEngine is the module-wide dataflow index. Build it with BuildTaint;
// analysis runs lazily on first use and is memoized.
type TaintEngine struct {
	g        *CallGraph
	fns      map[string]*taintFn
	keys     []string // sorted analyzable keys
	sums     map[string]*taintSummary
	writes   map[string][]globalWrite
	findings map[string][]Diagnostic
	done     bool
}

// moduleTaint is installed by Run; nil means fixture mode (per-package
// engines built on demand).
var moduleTaint *TaintEngine

// SetTaint installs a module-wide taint engine (call before Run).
func SetTaint(e *TaintEngine) { moduleTaint = e }

// taintFor returns the installed module engine, or builds a single-package
// one for fixture runs.
func taintFor(p *Package) *TaintEngine {
	if moduleTaint != nil {
		return moduleTaint
	}
	return BuildTaint([]*Package{p}, graphFor(p))
}

// BuildTaint indexes every analyzable function body (non-test, non-main)
// over an existing call graph. The packages must already be type-checked.
func BuildTaint(pkgs []*Package, g *CallGraph) *TaintEngine {
	e := &TaintEngine{
		g:        g,
		fns:      map[string]*taintFn{},
		sums:     map[string]*taintSummary{},
		writes:   map[string][]globalWrite{},
		findings: map[string][]Diagnostic{},
	}
	ordered := make([]*Package, len(pkgs))
	copy(ordered, pkgs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Dir < ordered[j].Dir })
	for _, p := range ordered {
		if p.TypesInfo == nil || p.baseName() == "main" {
			continue
		}
		for _, sf := range p.Files {
			if sf.Test {
				continue
			}
			for _, decl := range sf.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				if _, dup := e.fns[key]; dup {
					continue // colliding keys (init): first wins
				}
				e.fns[key] = &taintFn{p: p, fd: fd, key: key, boundary: boundaryReason(fd.Doc)}
			}
		}
	}
	e.keys = make([]string, 0, len(e.fns))
	for k := range e.fns {
		e.keys = append(e.keys, k)
	}
	sort.Strings(e.keys)
	return e
}

// findingsFor returns the memoized module-wide findings of one analyzer
// (tenantflow, sharedmut, or poolbleed).
func (e *TaintEngine) findingsFor(analyzer string) []Diagnostic {
	e.analyze()
	return e.findings[analyzer]
}

// analyze runs the whole pipeline once: summaries bottom-up over SCCs,
// then a reporting pass per function, then the sharedmut reachability
// pass.
func (e *TaintEngine) analyze() {
	if e.done {
		return
	}
	e.done = true
	for _, scc := range e.sccs() {
		e.solveSCC(scc)
	}
	for _, k := range e.keys {
		fn := e.fns[k]
		if fn.boundary != "" || fn.walker == nil {
			continue
		}
		fn.walker.pass(true)
	}
	e.sharedMutFindings()
}

// sccs computes the strongly connected components of the analyzable
// subgraph with Tarjan's algorithm, returning them callees-first (reverse
// topological order) — exactly the bottom-up summary order. Roots are
// visited in sorted key order, so the result is deterministic.
func (e *TaintEngine) sccs() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0
	var strongconnect func(k string)
	strongconnect = func(k string) {
		index[k] = next
		low[k] = next
		next++
		stack = append(stack, k)
		onStack[k] = true
		if n := e.g.Nodes[k]; n != nil {
			for _, edge := range n.Calls {
				c := edge.Callee
				if _, analyzable := e.fns[c]; !analyzable {
					continue
				}
				if _, seen := index[c]; !seen {
					strongconnect(c)
					if low[c] < low[k] {
						low[k] = low[c]
					}
				} else if onStack[c] && index[c] < low[k] {
					low[k] = index[c]
				}
			}
		}
		if low[k] == index[k] {
			var scc []string
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == k {
					break
				}
			}
			sort.Strings(scc)
			out = append(out, scc)
		}
	}
	for _, k := range e.keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return out
}

// solveSCC initializes summaries for the component's members and iterates
// their transfer passes to a joint fixpoint. Marks only grow and sink
// lists are deduplicated by value, so the iteration converges; the cap is
// a safety net, not a correctness device.
func (e *TaintEngine) solveSCC(scc []string) {
	for _, k := range scc {
		fn := e.fns[k]
		sum := &taintSummary{key: k, boundary: fn.boundary != ""}
		e.sums[k] = sum
		if sum.boundary {
			continue
		}
		fn.walker = newTaintWalker(e, fn, sum)
	}
	for round := 0; round < 12; round++ {
		changed := false
		for _, k := range scc {
			fn := e.fns[k]
			if fn.walker == nil {
				continue
			}
			if fn.walker.pass(false) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// cellKey addresses one tracked value: a variable, or one field of it.
type cellKey struct {
	obj   types.Object
	field string
}

// taintWalker holds the per-function fixpoint state.
type taintWalker struct {
	e     *TaintEngine
	fn    *taintFn
	sum   *taintSummary
	cells map[cellKey]mark
	// slotOf maps parameter objects to their slot index.
	slotOf map[types.Object]int
	// report gates finding emission (the final pass only).
	report  bool
	changed bool
}

func newTaintWalker(e *TaintEngine, fn *taintFn, sum *taintSummary) *taintWalker {
	w := &taintWalker{e: e, fn: fn, sum: sum, cells: map[cellKey]mark{}, slotOf: map[types.Object]int{}}
	slot := 0
	bind := func(fields []*ast.Field) {
		for _, f := range fields {
			if len(f.Names) == 0 {
				slot++ // unnamed receiver/parameter still occupies its slot
				continue
			}
			for _, name := range f.Names {
				obj := fn.p.TypesInfo.Defs[name]
				if obj != nil && slot < 64 {
					w.slotOf[obj] = slot
					m := mark{params: 1 << slot}
					if k, src, ok := sourceTypeKind(obj.Type()); ok {
						m.kinds = k
						m.src = src
						m.srcPos = fn.p.Fset.Position(name.Pos())
						sum.hasSource = true
					}
					w.cells[cellKey{obj, ""}] = m
				}
				slot++
			}
		}
	}
	if fn.fd.Recv != nil {
		bind(fn.fd.Recv.List)
	}
	if fn.fd.Type.Params != nil {
		bind(fn.fd.Type.Params.List)
	}
	return w
}

// sourceTypeKind reports whether t (possibly a pointer) is a whole source
// value; the aggregate carries every kind its fields do, so passing a
// whole request to a sink counts as keyed.
func sourceTypeKind(t types.Type) (taintKind, string, bool) {
	name, ok := sourceTypeName(t)
	if !ok {
		return 0, "", false
	}
	if _, isSource := sourceTypes[name]; !isSource {
		return 0, "", false
	}
	return taintIdentity | taintPayload, shortTypeName(name) + " value", true
}

// sourceTypeName renders the pkgpath.Type key of a (possibly pointer)
// named type.
func sourceTypeName(t types.Type) (string, bool) {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), true
}

// shortTypeName renders "l7.Request" from "canalmesh/internal/l7.Request".
func shortTypeName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// setCell merges m into the named cell, tracking change.
func (w *taintWalker) setCell(obj types.Object, field string, m mark) {
	if obj == nil || m.empty() {
		return
	}
	key := cellKey{obj, field}
	old := w.cells[key]
	merged := old.union(m)
	if merged != old {
		w.cells[key] = merged
		w.changed = true
	}
}

func (w *taintWalker) objOf(id *ast.Ident) types.Object {
	info := w.fn.p.TypesInfo
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// pass walks the body once, applying every transfer rule; it returns
// whether any cell or summary fact changed. With report set it also emits
// the tenantflow/poolbleed findings (summaries are final by then).
func (w *taintWalker) pass(report bool) bool {
	w.changed = false
	w.report = report
	ast.Inspect(w.fn.fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			w.assign(v)
		case *ast.RangeStmt:
			m := w.markExpr(v.X)
			w.assignTo(v.Key, m)
			w.assignTo(v.Value, m)
		case *ast.SendStmt:
			w.assignTo(v.Chan, w.markExpr(v.Value))
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				w.mergeResult(w.markExpr(r))
			}
		case *ast.IncDecStmt:
			w.globalStore(v.X, v.Pos(), mark{})
		case *ast.CallExpr:
			w.checkCall(v)
		}
		return true
	})
	return w.changed
}

// mergeResult folds one returned value's mark into the summary.
func (w *taintWalker) mergeResult(m mark) {
	s := w.sum
	if m.kinds&^s.resultKinds != 0 {
		s.resultKinds |= m.kinds
		w.changed = true
	}
	if s.resultSrc == "" && m.src != "" {
		s.resultSrc, s.resultSrcPos = m.src, m.srcPos
		w.changed = true
	}
	if m.params&^s.resultParams != 0 {
		s.resultParams |= m.params
		w.changed = true
	}
}

// assign applies one assignment statement: cell transfer plus the
// package-level-store rules.
func (w *taintWalker) assign(as *ast.AssignStmt) {
	// Tuple assignment from one call: every LHS gets the call's mark.
	var rhs []mark
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		m := w.markExpr(as.Rhs[0])
		for range as.Lhs {
			rhs = append(rhs, m)
		}
	} else {
		for _, r := range as.Rhs {
			rhs = append(rhs, w.markExpr(r))
		}
	}
	for i, lhs := range as.Lhs {
		if i >= len(rhs) {
			break
		}
		m := rhs[i]
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound (+=, |=, ...): the old value contributes too.
			m = m.union(w.markExpr(lhs))
		}
		w.assignTo(lhs, m)
		w.globalStore(lhs, as.TokPos, m)
	}
}

// assignTo merges m into the cell(s) the LHS denotes.
func (w *taintWalker) assignTo(lhs ast.Expr, m mark) {
	if lhs == nil || m.empty() {
		return
	}
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		w.setCell(w.objOf(v), "", m)
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(v.X).(*ast.Ident); ok {
			obj := w.objOf(base)
			w.setCell(obj, v.Sel.Name, m)
			w.setCell(obj, "", m) // the aggregate is at least as tainted
			return
		}
		w.assignTo(v.X, m)
	case *ast.IndexExpr:
		w.assignTo(v.X, m)
	case *ast.StarExpr:
		w.assignTo(v.X, m)
	}
}

// markExpr evaluates an expression's mark. It is pure: all state changes
// happen in the statement handlers.
func (w *taintWalker) markExpr(e ast.Expr) mark {
	switch v := e.(type) {
	case *ast.Ident:
		if obj := w.objOf(v); obj != nil {
			return w.cells[cellKey{obj, ""}]
		}
	case *ast.SelectorExpr:
		return w.markSelector(v)
	case *ast.CallExpr:
		return w.markCall(v)
	case *ast.ParenExpr:
		return w.markExpr(v.X)
	case *ast.StarExpr:
		return w.markExpr(v.X)
	case *ast.UnaryExpr:
		return w.markExpr(v.X) // covers &x and <-ch
	case *ast.BinaryExpr:
		return w.markExpr(v.X).union(w.markExpr(v.Y))
	case *ast.IndexExpr:
		return w.markExpr(v.X)
	case *ast.SliceExpr:
		return w.markExpr(v.X)
	case *ast.TypeAssertExpr:
		return w.markExpr(v.X)
	case *ast.KeyValueExpr:
		return w.markExpr(v.Value)
	case *ast.CompositeLit:
		var m mark
		for _, el := range v.Elts {
			m = m.union(w.markExpr(el))
		}
		// A composite that populates a Tenant/SrcTenant field of an
		// in-module struct is tenant-keyed data by construction — the
		// keying convention sinks look for (an AccessEntry carrying
		// Tenant: travels with its key).
		if tv, ok := w.fn.p.TypesInfo.Types[v]; ok && w.inModuleType(tv.Type) {
			for _, el := range v.Elts {
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					if key, isID := kv.Key.(*ast.Ident); isID && tenantKeyField(key.Name) {
						m.kinds |= taintIdentity
					}
				}
			}
		}
		return m
	}
	return mark{}
}

// markSelector evaluates x.f: the source-type field tables give real
// kinds; otherwise field cells, falling back to the aggregate cell.
func (w *taintWalker) markSelector(sel *ast.SelectorExpr) mark {
	info := w.fn.p.TypesInfo
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		// Package-qualified name or method value: reads of package-level
		// vars are clean by design (sharedmut guards the writes).
		return mark{}
	}
	base := w.markExpr(sel.X)
	if name, ok := sourceTypeName(s.Recv()); ok {
		if fields, isSource := sourceTypes[name]; isSource {
			kind, listed := fields[sel.Sel.Name]
			if !listed {
				kind = fields[""]
			}
			if w.sum != nil && !w.sum.hasSource {
				w.sum.hasSource = true
				w.changed = true
			}
			// The field's kind replaces the aggregate's; only the
			// param-dependence carries over.
			return mark{
				kinds:  kind,
				params: base.params,
				src:    shortTypeName(name) + "." + sel.Sel.Name,
				srcPos: w.fn.p.Fset.Position(sel.Pos()),
			}
		}
	}
	if tenantKeyField(sel.Sel.Name) && w.inModuleType(s.Recv()) {
		// The module's keying convention: a field named Tenant/SrcTenant on
		// any in-module struct carries the tenant key (the sourceTypes
		// table already covered the request structs above).
		return mark{kinds: taintIdentity, params: base.params}
	}
	if baseID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := w.objOf(baseID); obj != nil {
			return w.cells[cellKey{obj, sel.Sel.Name}].union(w.cells[cellKey{obj, ""}])
		}
	}
	return base
}

// tenantKeyField reports whether a struct field name is the module's
// tenant-key convention.
func tenantKeyField(name string) bool {
	return name == "Tenant" || name == "SrcTenant" || name == "tenant"
}

// inModuleType reports whether t (possibly a pointer) is a named type
// declared in the module under analysis.
func (w *taintWalker) inModuleType(t types.Type) bool {
	name, ok := sourceTypeName(t)
	if !ok {
		return false
	}
	mod := w.e.g.module
	return strings.HasPrefix(name, mod+"/") || strings.HasPrefix(name, mod+".")
}

// calleeOf resolves a call's concrete callee (static function or method;
// nil for dynamic, interface, and builtin calls).
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	if p.TypesInfo == nil {
		return nil
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := p.TypesInfo.Selections[f]; sel != nil {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := p.TypesInfo.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// markCall evaluates a call's result mark: conversions pass through,
// in-module callees go through their summaries (a boundary returns
// clean), everything else unions the argument taints.
func (w *taintWalker) markCall(call *ast.CallExpr) mark {
	p := w.fn.p
	fun := ast.Unparen(call.Fun)
	if tv, ok := p.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.markExpr(call.Args[0])
		}
		return mark{}
	}
	obj := calleeOf(p, call)
	if obj == nil {
		return w.argUnion(call)
	}
	key := funcKey(obj)
	if key == headerGetKey {
		pos := w.fn.p.Fset.Position(call.Pos())
		if len(call.Args) == 1 && constStringIs(p, call.Args[0], tenantHeaderValue) {
			if w.sum != nil && !w.sum.hasSource {
				w.sum.hasSource = true
				w.changed = true
			}
			return mark{kinds: taintIdentity, src: "the " + tenantHeaderValue + " header", srcPos: pos}
		}
		m := w.argUnion(call)
		m.kinds |= taintPayload
		if m.src == "" {
			m.src, m.srcPos = "http.Header.Get", pos
		}
		return m
	}
	if sum, ok := w.e.sums[key]; ok {
		if sum.boundary {
			return mark{}
		}
		var m mark
		if sum.resultKinds != 0 {
			m = mark{kinds: sum.resultKinds, src: sum.resultSrc, srcPos: sum.resultSrcPos}
		}
		for i, am := range w.callSlotMarks(call, obj) {
			if sum.resultParams&(1<<i) != 0 {
				m = m.union(am)
			}
		}
		return m
	}
	return w.argUnion(call)
}

// argUnion is the conservative rule for calls without a summary: the
// result carries whatever the receiver and arguments did.
func (w *taintWalker) argUnion(call *ast.CallExpr) mark {
	var m mark
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := w.fn.p.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			m = m.union(w.markExpr(sel.X))
		}
	}
	for _, arg := range call.Args {
		m = m.union(w.markExpr(arg))
	}
	return m
}

// callSlotMarks computes the per-slot argument marks for a resolved call,
// matching the slot numbering summaries use (receiver first, variadic
// arguments folded into the last slot).
func (w *taintWalker) callSlotMarks(call *ast.CallExpr, obj *types.Func) []mark {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	off := 0
	var slots []mark
	if sig.Recv() != nil {
		off = 1
		var rm mark
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s := w.fn.p.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				rm = w.markExpr(sel.X)
			}
		}
		slots = append(slots, rm)
	}
	n := sig.Params().Len()
	for i := 0; i < n; i++ {
		slots = append(slots, mark{})
	}
	for i, arg := range call.Args {
		slot := off + i
		if sig.Variadic() && i >= n-1 {
			slot = off + n - 1
		}
		if slot < len(slots) {
			slots[slot] = slots[slot].union(w.markExpr(arg))
		}
	}
	return slots
}

// checkCall applies the call-site rules: sink checks, pool discipline,
// and paramSink lifting through in-module summaries.
func (w *taintWalker) checkCall(call *ast.CallExpr) {
	p := w.fn.p
	if tv, ok := p.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		return
	}
	obj := calleeOf(p, call)
	if obj == nil {
		return
	}
	key := funcKey(obj)
	if desc, ok := taintSinks[key]; ok {
		w.sinkCall(call, obj, desc)
	}
	if key == poolPutKey && w.report {
		w.poolPut(call)
	}
	sum, ok := w.e.sums[key]
	if !ok || sum.boundary || len(sum.paramSinks) == 0 {
		return
	}
	slots := w.callSlotMarks(call, obj)
	for _, ps := range sum.paramSinks {
		var agg mark
		for i, m := range slots {
			if ps.params&(1<<i) != 0 {
				agg = agg.union(m)
			}
		}
		if agg.kinds&taintIdentity != 0 {
			continue // the tenant key travels along: keyed
		}
		chain := w.e.g.shortKey(key)
		if ps.chain != "" {
			chain += " -> " + ps.chain
		}
		if agg.kinds&taintPayload != 0 && w.report {
			w.reportTenantFlow(call.Lparen, agg, ps.sink, chain)
		}
		if agg.params != 0 {
			if w.sum.addParamSink(agg.params, ps.sink, chain) {
				w.changed = true
			}
		}
	}
}

// sinkCall applies the direct-sink rule: payload without identity among
// the call's values is a leak; parameter-dependent taint lifts into the
// summary for the callers to judge.
func (w *taintWalker) sinkCall(call *ast.CallExpr, obj *types.Func, desc string) {
	var agg mark
	for _, m := range w.callSlotMarks(call, obj) {
		agg = agg.union(m)
	}
	if agg.kinds&taintIdentity != 0 {
		return // keyed by the tenant in the same call
	}
	if agg.kinds&taintPayload != 0 && w.report {
		w.reportTenantFlow(call.Lparen, agg, desc, "")
	}
	if agg.params != 0 {
		sink := desc + " at " + baseLine(w.fn.p.Fset.Position(call.Lparen).Filename, w.fn.p.Fset.Position(call.Lparen).Line)
		if w.sum.addParamSink(agg.params, sink, "") {
			w.changed = true
		}
	}
}

// reportTenantFlow emits one tenantflow finding.
func (w *taintWalker) reportTenantFlow(pos token.Pos, m mark, sink, chain string) {
	src := m.src
	if src == "" {
		src = "request data"
	} else if m.srcPos.IsValid() {
		src += " (" + baseLine(m.srcPos.Filename, m.srcPos.Line) + ")"
	}
	msg := fmt.Sprintf("tenant payload from %s reaches %s without a tenant key", src, sink)
	if chain != "" {
		msg += " (via " + chain + ")"
	}
	w.e.findings["tenantflow"] = append(w.e.findings["tenantflow"], Diagnostic{
		Pos:     w.fn.p.Fset.Position(pos),
		Message: msg,
	})
}

// globalStore checks an assignment target against the package-level-state
// rules, recording a sharedmut candidate and emitting the tenantflow
// cache rule (source-derived payload stored without a tenant key).
func (w *taintWalker) globalStore(lhs ast.Expr, pos token.Pos, value mark) {
	gv, keyExpr := w.globalTarget(lhs)
	if gv == nil {
		return
	}
	keyed := false
	if keyExpr != nil {
		keyed = w.markExpr(keyExpr).kinds&taintIdentity != 0
	}
	if !w.report {
		return
	}
	class := gv.Pkg().Path() + "." + gv.Name()
	off := w.fn.p.Fset.Position(pos).Offset
	locked := false
	if n := w.e.g.Nodes[w.fn.key]; n != nil {
		for _, ls := range n.Locks {
			if ls.Pos < pos && off < ls.EndOff {
				locked = true
				break
			}
		}
	}
	w.e.writes[w.fn.key] = append(w.e.writes[w.fn.key], globalWrite{
		class:    w.e.g.shortKey(class),
		pos:      pos,
		position: w.fn.p.Fset.Position(pos),
		locked:   locked,
		keyed:    keyed,
		value:    value,
	})
	if value.kinds&taintPayload != 0 && value.kinds&taintIdentity == 0 && !keyed {
		src := value.src
		if src == "" {
			src = "request data"
		} else if value.srcPos.IsValid() {
			src += " (" + baseLine(value.srcPos.Filename, value.srcPos.Line) + ")"
		}
		w.e.findings["tenantflow"] = append(w.e.findings["tenantflow"], Diagnostic{
			Pos: w.fn.p.Fset.Position(pos),
			Message: fmt.Sprintf("tenant payload from %s stored in package-level %s without a tenant key",
				src, w.e.g.shortKey(class)),
		})
	}
}

// globalTarget resolves an assignment LHS to the package-level variable it
// mutates (nil when it is not one), plus the index key expression when the
// write is a direct map/slice store into the variable.
func (w *taintWalker) globalTarget(lhs ast.Expr) (*types.Var, ast.Expr) {
	var keyExpr ast.Expr
	e := ast.Unparen(lhs)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			keyExpr = v.Index
			e = ast.Unparen(v.X)
			continue
		case *ast.SelectorExpr:
			// pkg.Var or global.field: resolve the selected object first.
			if obj, ok := w.fn.p.TypesInfo.Uses[v.Sel].(*types.Var); ok && isPackageVar(obj) {
				return w.moduleVar(obj), keyExpr
			}
			keyExpr = nil
			e = ast.Unparen(v.X)
			continue
		case *ast.StarExpr:
			keyExpr = nil
			e = ast.Unparen(v.X)
			continue
		case *ast.Ident:
			if obj, ok := w.objOf(v).(*types.Var); ok && isPackageVar(obj) {
				return w.moduleVar(obj), keyExpr
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// isPackageVar reports whether obj is a package-scope variable.
func isPackageVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// moduleVar filters to variables of the module under analysis.
func (w *taintWalker) moduleVar(v *types.Var) *types.Var {
	mod := w.e.g.module
	path := v.Pkg().Path()
	if path == mod || strings.HasPrefix(path, mod+"/") {
		return v
	}
	return nil
}

// poolPut enforces the reset-before-Put discipline on sync.Pool: a buffer
// returned dirty hands this request's bytes to whichever request Gets it
// next — across tenants in a shared gateway process. The check is
// intraprocedural and textual: some reset of the same expression must
// appear before the Put. Arguments that are not idents or selectors
// (fresh composites, call results) are skipped.
func (w *taintWalker) poolPut(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return
	}
	name := exprString(arg)
	if strings.Contains(name, "?") {
		return
	}
	if w.resetBefore(name, call.Lparen) {
		return
	}
	w.e.findings["poolbleed"] = append(w.e.findings["poolbleed"], Diagnostic{
		Pos: w.fn.p.Fset.Position(call.Lparen),
		Message: fmt.Sprintf("%s is returned to the pool without a reset; the next Get hands this request's bytes to another tenant",
			name),
	})
}

// resetBefore reports whether the body resets the named value before pos:
// a Reset/Clear/Truncate method call, a reslice to length zero, a clear()
// builtin, or zeroing with an empty composite literal. Matching is on the
// rendered expression, field resets (buf.b = buf.b[:0]) included.
func (w *taintWalker) resetBefore(name string, pos token.Pos) bool {
	matches := func(e ast.Expr) bool {
		s := exprString(ast.Unparen(e))
		return s == name || strings.HasPrefix(s, name+".")
	}
	found := false
	ast.Inspect(w.fn.fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Reset", "Clear", "Truncate":
					if matches(sel.X) {
						found = true
					}
				}
			}
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "clear" && len(v.Args) == 1 {
				if _, isBuiltin := w.fn.p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && matches(v.Args[0]) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				target := ast.Unparen(lhs)
				if st, ok := target.(*ast.StarExpr); ok {
					target = ast.Unparen(st.X)
				}
				if !matches(target) {
					continue
				}
				switch rv := ast.Unparen(v.Rhs[i]).(type) {
				case *ast.SliceExpr:
					if matches(rv.X) && rv.Low == nil && rv.High != nil && constIntZero(w.fn.p, rv.High) {
						found = true
					}
				case *ast.CompositeLit:
					if len(rv.Elts) == 0 {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// constIntZero reports whether e is the constant 0.
func constIntZero(p *Package, e ast.Expr) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// constStringIs reports whether e is a string constant with the value s.
func constStringIs(p *Package, e ast.Expr, s string) bool {
	if p.TypesInfo == nil {
		return false
	}
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return constant.StringVal(tv.Value) == s
}

// sharedMutFindings runs the request-path reachability pass: package-level
// writes recorded by the walkers are a finding when the writing function
// is reachable from a request-path root (a //canal:hotpath function or one
// that reads a taint source) and neither a lock hold nor a tenant-keyed
// index guards the write.
func (e *TaintEngine) sharedMutFindings() {
	var roots []string
	for _, k := range e.keys {
		sum := e.sums[k]
		n := e.g.Nodes[k]
		if (sum != nil && sum.hasSource) || (n != nil && n.Hot) {
			roots = append(roots, k)
		}
	}
	type hit struct {
		root  string
		chain string
	}
	onPath := map[string]hit{}
	for _, root := range roots {
		seen := e.g.reach(root, nil)
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, claimed := onPath[k]; claimed {
				continue // first (sorted) root wins: deterministic messages
			}
			chain := ""
			if k != root {
				chain = e.g.chain(seen, root, k)
			}
			onPath[k] = hit{root: root, chain: chain}
		}
	}
	reported := map[string]bool{}
	for _, k := range e.keys {
		writes := e.writes[k]
		if len(writes) == 0 {
			continue
		}
		h, ok := onPath[k]
		if !ok {
			continue
		}
		for _, gw := range writes {
			if gw.locked || gw.keyed {
				continue
			}
			site := fmt.Sprintf("%s:%d:%s", gw.position.Filename, gw.position.Offset, gw.class)
			if reported[site] {
				continue
			}
			reported[site] = true
			msg := fmt.Sprintf("package-level %s written without a lock or tenant key in request-path function %s",
				gw.class, e.g.shortKey(h.root))
			if h.chain != "" {
				msg = fmt.Sprintf("package-level %s written without a lock or tenant key on the request path of %s (via %s)",
					gw.class, e.g.shortKey(h.root), h.chain)
			}
			e.findings["sharedmut"] = append(e.findings["sharedmut"], Diagnostic{
				Pos:     gw.position,
				Message: msg,
			})
		}
	}
}

// DumpSummary prints one function's taint summary (the -taint CLI debug
// view): boundary status, sources, result flow, and every sink reachable
// with caller-supplied taint. Returns false when the name resolves to no
// unique analyzable function.
func (e *TaintEngine) DumpSummary(out io.Writer, name string) bool {
	e.analyze()
	n := e.g.Lookup(name)
	if n == nil {
		return false
	}
	fn, ok := e.fns[n.Key]
	if !ok {
		return false
	}
	sum := e.sums[n.Key]
	fmt.Fprintf(out, "%s\n", n.Key)
	fmt.Fprintf(out, "  at      %s\n", n.Position)
	if fn.boundary != "" {
		fmt.Fprintf(out, "  boundary %s\n", fn.boundary)
		return true
	}
	if sum == nil {
		return true
	}
	fmt.Fprintf(out, "  source  %v\n", sum.hasSource)
	fmt.Fprintf(out, "  results kinds=%s params=%s", sum.resultKinds, sum.resultParams)
	if sum.resultSrc != "" {
		fmt.Fprintf(out, " src=%q", sum.resultSrc)
	}
	fmt.Fprintln(out)
	for _, ps := range sum.paramSinks {
		fmt.Fprintf(out, "  sink    %s when params %s carry payload", ps.sink, ps.params)
		if ps.chain != "" {
			fmt.Fprintf(out, " (via %s)", ps.chain)
		}
		fmt.Fprintln(out)
	}
	for _, gw := range e.writes[n.Key] {
		fmt.Fprintf(out, "  write   package-level %s locked=%v keyed=%v value=%s\n",
			gw.class, gw.locked, gw.keyed, gw.value.kinds)
	}
	return true
}
