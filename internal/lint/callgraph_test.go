package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// graphOver builds the call graph over a loaded engine mini-module.
func graphOver(t *testing.T, name string) *CallGraph {
	t.Helper()
	return BuildCallGraph(loadEngineModule(t, name))
}

func findEdge(n *FuncNode, callee string) *CallEdge {
	for i := range n.Calls {
		if n.Calls[i].Callee == callee {
			return &n.Calls[i]
		}
	}
	return nil
}

// TestCallGraphInterfaceDispatch proves CHA fans an interface method call
// out to every in-module implementation, value and pointer receivers alike.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := graphOver(t, "callgraph")
	chime := g.Nodes["cgfix/a.Chime"]
	if chime == nil {
		t.Fatalf("missing node cgfix/a.Chime; have %v", g.Keys())
	}
	for _, want := range []string{"cgfix/a.(Bell).Ring", "cgfix/a.(*Gong).Ring"} {
		e := findEdge(chime, want)
		if e == nil {
			t.Fatalf("Chime lacks CHA edge to %s: %+v", want, chime.Calls)
		}
		if !e.Iface {
			t.Errorf("edge to %s not marked Iface", want)
		}
	}
}

// TestCallGraphMethodValue proves a method value passed as a callback
// becomes a may-call Ref edge alongside the static call to the receiver
// of the callback.
func TestCallGraphMethodValue(t *testing.T) {
	g := graphOver(t, "callgraph")
	h := g.Nodes["cgfix/a.Handle"]
	if h == nil {
		t.Fatal("missing node cgfix/a.Handle")
	}
	e := findEdge(h, "cgfix/a.(Bell).Ring")
	if e == nil {
		t.Fatalf("Handle lacks method-value edge to (Bell).Ring: %+v", h.Calls)
	}
	if !e.Ref {
		t.Error("method-value edge not marked Ref")
	}
	if findEdge(h, "cgfix/a.Apply") == nil {
		t.Error("Handle lacks the static edge to Apply")
	}
}

// TestCallGraphRecursion proves reachability terminates on direct and
// mutual recursion, and that Reachable excludes the start node.
func TestCallGraphRecursion(t *testing.T) {
	g := graphOver(t, "callgraph")
	if n := g.Nodes["cgfix/a.Countdown"]; n == nil || findEdge(n, "cgfix/a.Countdown") == nil {
		t.Fatal("Countdown lacks its self-edge")
	}
	if got := g.Reachable("cgfix/a.Countdown"); len(got) != 0 {
		t.Errorf("Reachable(Countdown) = %v, want empty (start excluded)", got)
	}
	even := g.Reachable("cgfix/a.Even")
	if len(even) != 1 || even[0] != "cgfix/a.Odd" {
		t.Errorf("Reachable(Even) = %v, want [cgfix/a.Odd]", even)
	}
}

// TestCallGraphTestUnitEdges proves the cross-unit story: CHA sees
// test-only implementations, reachability refuses to walk into them, and
// external-test callers get edges into the primary unit.
func TestCallGraphTestUnitEdges(t *testing.T) {
	g := graphOver(t, "callgraph")
	chime := g.Nodes["cgfix/a.Chime"]
	if chime == nil {
		t.Fatal("missing node cgfix/a.Chime")
	}
	testImpl := "cgfix/a_test.(loudRinger).Ring"
	if findEdge(chime, testImpl) == nil {
		t.Fatalf("CHA missed the test-unit implementation %s: %+v", testImpl, chime.Calls)
	}
	if n := g.Nodes[testImpl]; n == nil || !n.Test {
		t.Fatalf("test-unit implementation not indexed as a test node: %+v", n)
	}
	for _, k := range g.Reachable("cgfix/a.Chime") {
		if g.Nodes[k].Test {
			t.Errorf("reachability entered test node %s", k)
		}
	}
	ring := g.Nodes["cgfix/a_test.ringAll"]
	if ring == nil || !ring.Test {
		t.Fatalf("external-test caller not indexed: %+v", ring)
	}
	for _, want := range []string{"cgfix/a.Chime", "cgfix/a.Handle"} {
		if findEdge(ring, want) == nil {
			t.Errorf("ringAll lacks cross-unit edge to %s: %+v", want, ring.Calls)
		}
	}
}

// TestCallGraphLookup exercises the CLI resolution rules: exact key,
// unique suffix, and ambiguity.
func TestCallGraphLookup(t *testing.T) {
	g := graphOver(t, "callgraph")
	if n := g.Lookup("cgfix/a.Chime"); n == nil || n.Key != "cgfix/a.Chime" {
		t.Errorf("exact lookup failed: %+v", n)
	}
	if n := g.Lookup("Chime"); n == nil || n.Key != "cgfix/a.Chime" {
		t.Errorf("suffix lookup failed: %+v", n)
	}
	if n := g.Lookup("(Bell).Ring"); n == nil || n.Key != "cgfix/a.(Bell).Ring" {
		t.Errorf("receiver suffix lookup failed: %+v", n)
	}
	if n := g.Lookup("Ring"); n != nil {
		t.Errorf("ambiguous lookup resolved to %s, want nil", n.Key)
	}
}

// TestHotPathFixture runs the hotpath analyzer over its want fixture
// (single package: graphFor falls back to a per-package graph).
func TestHotPathFixture(t *testing.T) {
	diags := runTypedFixture(t, "hotpath", "internal/l7", "hotpath")
	checkFixture(t, fixtureFile("hotpath"), diags)
}

// TestHotPathDirectives runs the full pipeline over the directive fixture:
// a justified //canal:allow hotpath suppresses, a rotted one reports stale.
func TestHotPathDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "hotpathallow"), "internal/l7")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{HotPath()})
	checkFixture(t, fixtureFile("hotpathallow"), diags)
}

// TestLockOrderFixture runs the lockorder analyzer over its single-package
// want fixture.
func TestLockOrderFixture(t *testing.T) {
	diags := runTypedFixture(t, "lockorder", "internal/overlay", "lockorder")
	checkFixture(t, fixtureFile("lockorder"), diags)
}

// checkModuleFixture checks want comments in every source file of a
// mini-module against the diagnostics landing in that file.
func checkModuleFixture(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	for _, p := range pkgs {
		for _, sf := range p.Files {
			var own []Diagnostic
			for _, d := range diags {
				if d.Pos.Filename == sf.Name {
					own = append(own, d)
				}
			}
			checkFixture(t, sf.Name, own)
		}
	}
}

// TestLockCycleModule proves the cross-package inversion fixture: both
// legs of the A/B cycle report with their chains, and the suppressed leg
// of the C/D cycle stays quiet while the core-side leg reports.
func TestLockCycleModule(t *testing.T) {
	pkgs, _, err := LoadModule(filepath.Join("testdata", "engine", "lockcycle"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{LockOrder()})
	checkModuleFixture(t, pkgs, diags)
	// Both acquisition chains must be spelled out, including the leg that
	// reaches its second lock through a call into the other package.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "takes core.A.Mu via core.TouchA") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic spells out the call-mediated leg: %v", diags)
	}
}

// TestTransDetModule proves transitive determinism over a canalmesh-named
// mini-module: sim-scope call sites into helpers that reach the clock or
// global rand report (with the helper chain), suppression and staleness
// work, and propagation stops when a path re-enters sim scope.
func TestTransDetModule(t *testing.T) {
	pkgs, _, err := LoadModule(filepath.Join("testdata", "engine", "transdet"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []*Analyzer{TransDeterminism()})
	checkModuleFixture(t, pkgs, diags)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "(via internal/clockutil.Stamp -> internal/clockutil.nanos)") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic carries the via chain through the helper package: %v", diags)
	}
}

// TestInterprocDeterminism is the ISSUE 7 acceptance gate: the seeded
// hot-path allocation fixture, the lockorder cycle module, and the
// transdeterminism module each produce byte-identical diagnostics across
// two independent loads and runs (fresh FileSets, fresh type-checkers,
// fresh graphs).
func TestInterprocDeterminism(t *testing.T) {
	render := func(diags []Diagnostic) string {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
		return b.String()
	}
	one := func() [3]string {
		var out [3]string
		out[0] = render(runTypedFixture(t, "hotpath", "internal/l7", "hotpath"))
		lc, _, err := LoadModule(filepath.Join("testdata", "engine", "lockcycle"))
		if err != nil {
			t.Fatal(err)
		}
		out[1] = render(Run(lc, []*Analyzer{LockOrder()}))
		td, _, err := LoadModule(filepath.Join("testdata", "engine", "transdet"))
		if err != nil {
			t.Fatal(err)
		}
		out[2] = render(Run(td, []*Analyzer{TransDeterminism()}))
		return out
	}
	first, second := one(), one()
	for i, name := range []string{"hotpath fixture", "lockcycle module", "transdet module"} {
		if first[i] == "" {
			t.Errorf("%s produced no diagnostics; the determinism check is vacuous", name)
		}
		if first[i] != second[i] {
			t.Errorf("%s diverged across runs:\n--- first\n%s--- second\n%s", name, first[i], second[i])
		}
	}
}
