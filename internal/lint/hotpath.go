package lint

import (
	"fmt"
	"path/filepath"
	"sort"
)

// HotPath enforces the zero-allocation contract on the request-time hot
// paths: a function annotated
//
//	//canal:hotpath
//
// (L7 route match/dispatch, the sim event-loop pop/dispatch, trace hop
// recording, admission submit) — and every function reachable from it
// through the call graph — must not heap-allocate (escaping composite
// literals, append growth, string concatenation/conversions, interface
// boxing at call sites), acquire mutexes, block on channels, or call the
// banned packages (fmt, reflect, regexp). "Dissecting Service Mesh
// Overheads" (PAPERS.md) locates mesh dataplane latency exactly there:
// per-request allocation and locking. Violations that are deliberate
// (amortized growth against preallocated capacity, uncontended mutexes
// required for the concurrent live path) carry //canal:allow hotpath
// directives with the justification.
//
// Reachability excludes test-file functions: a test fake implementing a
// dataplane interface is not on the production hot path.
func HotPath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation, locking, blocking, and fmt/reflect/regexp on //canal:hotpath-reachable code (call-graph-aware)",
		Run:  runHotPath,
	}
}

func runHotPath(p *Package, r *Reporter) {
	for _, d := range graphFor(p).hotpathFindings() {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}

// ownsFile reports whether the package contains the named source file —
// how module-wide findings are routed to the package whose directives
// govern them.
func ownsFile(p *Package, file string) bool {
	for _, sf := range p.Files {
		if sf.Name == file {
			return true
		}
	}
	return false
}

// hotpathFindings computes the module-wide hotpath diagnostics once.
func (g *CallGraph) hotpathFindings() []Diagnostic {
	if g.hotDone {
		return g.hotDiags
	}
	g.hotDone = true
	type site struct {
		file string
		off  int
		what string
	}
	reported := map[site]bool{}
	for _, root := range g.hotRoots() {
		seen := g.reach(root.Key, nil)
		keys := make([]string, 0, len(seen))
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n := g.Nodes[k]
			if n == nil || n.Test {
				continue
			}
			for _, f := range n.Facts {
				if f.Kind != FactAlloc && f.Kind != FactLock && f.Kind != FactChan && f.Kind != FactBanned {
					continue
				}
				s := site{file: f.Position.Filename, off: f.Position.Offset, what: f.What}
				if reported[s] {
					continue
				}
				reported[s] = true
				msg := fmt.Sprintf("%s in hot-path function %s", f.What, g.shortKey(root.Key))
				if k != root.Key {
					msg = fmt.Sprintf("%s on the hot path of %s (via %s)", f.What, g.shortKey(root.Key), g.chain(seen, root.Key, k))
				}
				g.hotDiags = append(g.hotDiags, Diagnostic{
					Pos:     f.Position,
					Message: msg,
				})
			}
		}
	}
	return g.hotDiags
}

// baseLine renders "file.go:line" from a token.Position (base name only,
// so messages stay stable across checkouts).
func baseLine(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filepath.Base(filename), line)
}
