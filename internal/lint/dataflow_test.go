package lint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// taintAnalyzers is the trio under test, in suite order.
func taintAnalyzers() []*Analyzer {
	return []*Analyzer{TenantFlow(), SharedMut(), PoolBleed()}
}

// loadTaintModule loads the taint mini-module fresh (no shared state with
// other tests, so determinism comparisons are non-vacuous).
func loadTaintModule(t *testing.T) []*Package {
	t.Helper()
	pkgs, _, err := LoadModule(filepath.Join("testdata", "engine", "taint"))
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestTaintModule proves every scenario in the mini-module: direct sinks,
// keyed sinks, interprocedural chains, boundary stops, summary recursion,
// the tenant-header special case, directive suppression and staleness,
// lock/tenant-key escapes for sharedmut, and each poolbleed reset idiom.
func TestTaintModule(t *testing.T) {
	pkgs := loadTaintModule(t)
	diags := Run(pkgs, taintAnalyzers())
	checkModuleFixture(t, pkgs, diags)
	// The two-hop leak must spell out its full propagation chain.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "via internal/gateway.emit -> internal/gateway.write") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic carries the two-hop summary chain: %v", diags)
	}
}

// TestTaintDeterminism renders the trio's diagnostics from two fresh loads
// of the mini-module and requires byte-identical output — the invariant
// verify.sh and CI enforce on the real module with cmp.
func TestTaintDeterminism(t *testing.T) {
	render := func() string {
		var b strings.Builder
		for _, d := range Run(loadTaintModule(t), taintAnalyzers()) {
			fmt.Fprintf(&b, "%s\n", d)
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("taint diagnostics differ between identical runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if a == "" {
		t.Fatal("determinism check is vacuous: the fixture produced no diagnostics")
	}
}

// TestTaintDump exercises the -taint debug view: boundary status, summary
// facts, and lifted sinks render for a named function.
func TestTaintDump(t *testing.T) {
	pkgs := loadTaintModule(t)
	TypeCheck(pkgs)
	e := BuildTaint(pkgs, BuildCallGraph(pkgs))
	var out bytes.Buffer
	if !e.DumpSummary(&out, "write") {
		t.Fatal("DumpSummary failed to resolve internal/gateway.write")
	}
	s := out.String()
	for _, want := range []string{"canalmesh/internal/gateway.write", "http.Error response write", "when params"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump of write lacks %q:\n%s", want, s)
		}
	}
	out.Reset()
	if !e.DumpSummary(&out, "respond") {
		t.Fatal("DumpSummary failed to resolve internal/gateway.respond")
	}
	if !strings.Contains(out.String(), "boundary") {
		t.Errorf("dump of the boundary function lacks its status:\n%s", out.String())
	}
	if e.DumpSummary(&out, "no.such.function") {
		t.Error("DumpSummary resolved a nonexistent function")
	}
}

// TestTaintBoundaryStopsPropagation pins the boundary contract directly:
// the boundary function's summary is clean and its body contributes no
// findings, so the caller passing payload into it stays quiet.
func TestTaintBoundaryStopsPropagation(t *testing.T) {
	pkgs := loadTaintModule(t)
	diags := Run(pkgs, taintAnalyzers())
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "gateway.go") &&
			(strings.Contains(d.Message, "respond") || strings.Contains(d.Message, "Reject")) {
			t.Errorf("boundary failed to stop propagation: %s", d)
		}
	}
}

// TestTaintSubsetDirectives proves a subset run does not mark the other
// analyzers' directives stale: the fixture carries a justified tenantflow
// suppression, and running only sharedmut must not report it.
func TestTaintSubsetDirectives(t *testing.T) {
	diags := Run(loadTaintModule(t), []*Analyzer{SharedMut()})
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("subset run reported an inactive analyzer's directive as stale: %s", d)
		}
		if d.Analyzer == "tenantflow" || d.Analyzer == "poolbleed" {
			t.Errorf("subset run produced a diagnostic from an inactive analyzer: %s", d)
		}
	}
}

// TestPoolBleedFallback runs the analyzer through the single-package
// fixture path (no module-wide engine installed), exercising taintFor's
// on-demand construction.
func TestPoolBleedFallback(t *testing.T) {
	diags := runTypedFixture(t, "poolbleed", "internal/bufpool", "poolbleed")
	checkFixture(t, fixtureFile("poolbleed"), diags)
}
