package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// moduleName reads the module path from root/go.mod, defaulting to
// DefaultModule when the file or directive is absent (fixture trees).
func moduleName(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return DefaultModule
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if rest = strings.TrimSpace(rest); rest != "" {
				return strings.Trim(rest, `"`)
			}
		}
	}
	return DefaultModule
}

// LoadModule parses every Go package under root into one shared FileSet.
// Directories named testdata, vendor, or starting with "." or "_" are
// skipped (testdata holds the linter's own deliberately-violating fixtures),
// as are files whose //go:build constraint a default build excludes.
// Files that fail to parse abort the load: a lint run over a tree that does
// not parse would under-report, not over-report.
func LoadModule(root string) ([]*Package, *token.FileSet, error) {
	fset := token.NewFileSet()
	module := moduleName(root)
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		pkg, err := loadDir(fset, path, rel)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkg.Module = module
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, fset, nil
}

// LoadDir parses a single directory as one Package with Dir set to relDir
// (which determines, e.g., whether simdeterminism applies). Used by fixture
// tests to pose as specific module paths.
func LoadDir(dir, relDir string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, err := loadDir(fset, dir, relDir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

func loadDir(fset *token.FileSet, dir, rel string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: rel, Fset: fset, Module: DefaultModule}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if buildExcluded(src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, SourceFile{
			Name: path,
			AST:  f,
			Test: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// buildExcluded reports whether the file's //go:build constraint (if any)
// excludes it from a default build of this tree: the tag set `go build`
// would use with no -tags flag. Without this, tag-disjoint file pairs (e.g.
// `//go:build race` / `//go:build !race` declaring the same constant) parse
// as a redeclaration the compiler never sees.
func buildExcluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			return false // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false // malformed line: keep the file, let go vet complain
		}
		return !expr.Eval(defaultBuildTag)
	}
	return false
}

// defaultBuildTag reports whether tag is satisfied in a default build: the
// host OS/arch, the gc toolchain, the "unix" alias, and every go1.N
// language version. Opt-in tags like "race" are unsatisfied.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
	}
	return strings.HasPrefix(tag, "go1.")
}

// forEachFunc visits every function or method body in the file, including
// function literals, handing fn the enclosing declaration (nil for literals
// outside any decl) and the body.
func forEachFunc(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
		}
	}
}
