package lint

// PoolBleed enforces the reset-before-reuse discipline on sync.Pool: a
// value handed to (*sync.Pool).Put without a preceding reset of the same
// value — a Reset/Clear/Truncate call, a reslice to zero length, clear(),
// or zeroing with an empty composite literal — still holds the previous
// request's bytes, and in a shared multi-tenant gateway the next Get may
// serve a different tenant. This is the classic pooled-buffer cross-tenant
// leak; the check is deliberately strict (any textual reset before the Put
// in the same function counts, nothing else does) because a dirty Put is
// never cheaper than buf.Reset().
//
// Arguments that are fresh values at the Put site (composite literals,
// call results) are skipped — there is no prior request in them.
func PoolBleed() *Analyzer {
	return &Analyzer{
		Name: "poolbleed",
		Doc:  "report sync.Pool values returned without a reset, leaking one request's bytes to the next",
		Run:  runPoolBleed,
	}
}

func runPoolBleed(p *Package, r *Reporter) {
	for _, d := range taintFor(p).findingsFor("poolbleed") {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}
