package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLeak finds goroutines parked forever on function-local unbuffered
// channels. The bench runner's first design leaked one goroutine per
// abandoned experiment exactly this way: a worker sending its result on
// an unbuffered channel nobody would ever read after the timeout path
// returned. The analyzer tracks channels created with make(chan T) (no
// or zero capacity) that never escape the function, and flags:
//
//   - a send or receive on such a channel inside a `go func(){...}()`
//     literal with no escape hatch — no select with a default or second
//     case, and (for receives) no close of the channel anywhere in the
//     function;
//   - ranging over such a channel when the function never closes it —
//     the range can never terminate.
//
// Passing the channel to a call, returning it, or storing it anywhere
// counts as escaping and silences the analyzer: another function may
// complete the handshake. Test files are skipped (tests park goroutines
// on purpose to probe timeout paths).
func ChanLeak() *Analyzer {
	return &Analyzer{
		Name: "chanleak",
		Doc:  "flag goroutines blocked forever on local unbuffered channels (type-aware)",
		Run:  runChanLeak,
	}
}

func runChanLeak(p *Package, r *Reporter) {
	if p.TypesInfo == nil {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		forEachFunc(sf.AST, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkFuncChans(p, r, fd)
		})
	}
}

// localChan is one tracked function-local unbuffered channel.
type localChan struct {
	name    string
	escaped bool
	closed  bool
}

func checkFuncChans(p *Package, r *Reporter, fd *ast.FuncDecl) {
	chans := map[types.Object]*localChan{}

	// Pass 1: collect `ch := make(chan T)` / `var ch = make(chan T)` with
	// zero capacity.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				id, ok := v.Lhs[i].(*ast.Ident)
				if !ok || !isUnbufferedMake(p, rhs) {
					continue
				}
				if obj := p.TypesInfo.Defs[id]; obj != nil {
					chans[obj] = &localChan{name: id.Name}
				}
			}
		case *ast.ValueSpec:
			if len(v.Names) != len(v.Values) {
				return true
			}
			for i, val := range v.Values {
				if !isUnbufferedMake(p, val) {
					continue
				}
				if obj := p.TypesInfo.Defs[v.Names[i]]; obj != nil {
					chans[obj] = &localChan{name: v.Names[i].Name}
				}
			}
		}
		return true
	})
	if len(chans) == 0 {
		return
	}

	// Pass 2: escape analysis. Any use of the channel other than a direct
	// send/receive/range/close/len/cap or its own declaration marks it
	// escaped — it may reach another goroutine's hands through a call,
	// return, or store, and the handshake could complete there.
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lc := chans[chanObjOf(p, id)]
		if lc == nil {
			return true
		}
		switch parent := parentOf(stack).(type) {
		case *ast.SendStmt:
			if parent.Chan != ast.Expr(id) {
				lc.escaped = true // ch sent over another channel
			}
		case *ast.UnaryExpr:
			if parent.Op != token.ARROW {
				lc.escaped = true // e.g. &ch
			}
		case *ast.RangeStmt:
			if parent.X != ast.Expr(id) {
				lc.escaped = true
			}
		case *ast.CallExpr:
			if !isChanBuiltin(p, parent) {
				lc.escaped = true // passed to a real call
			} else if fn, ok := parent.Fun.(*ast.Ident); ok && fn.Name == "close" {
				lc.closed = true
			}
		case *ast.AssignStmt, *ast.ValueSpec:
			// Its own declaration; re-assignment or aliasing would put the
			// ident on an Lhs/Rhs we also reach here — treat any assignment
			// context other than the defining one conservatively.
			if !definesIdent(parent, id) {
				lc.escaped = true
			}
		default:
			lc.escaped = true // returned, stored in a composite, compared, ...
		}
		return true
	})

	// Pass 3: report.
	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			id, ok := v.Chan.(*ast.Ident)
			if !ok {
				return true
			}
			lc := chans[chanObjOf(p, id)]
			if lc == nil || lc.escaped {
				return true
			}
			if inGoroutine(stack) && !selectEscape(stack) {
				r.Reportf(v.Arrow,
					"goroutine sends on unbuffered local channel %s with no select escape; an abandoned receiver leaks this goroutine forever (buffer the channel or select on ctx.Done())",
					lc.name)
			}
		case *ast.UnaryExpr:
			if v.Op != token.ARROW {
				return true
			}
			id, ok := v.X.(*ast.Ident)
			if !ok {
				return true
			}
			lc := chans[chanObjOf(p, id)]
			if lc == nil || lc.escaped || lc.closed {
				return true
			}
			if inGoroutine(stack) && !selectEscape(stack) {
				r.Reportf(v.OpPos,
					"goroutine receives from unbuffered local channel %s that is never closed and has no select escape; a lost sender leaks this goroutine forever",
					lc.name)
			}
		case *ast.RangeStmt:
			id, ok := v.X.(*ast.Ident)
			if !ok {
				return true
			}
			lc := chans[chanObjOf(p, id)]
			if lc == nil || lc.escaped || lc.closed {
				return true
			}
			r.Reportf(v.For,
				"ranging over local channel %s which is never closed; the loop can never terminate", lc.name)
		}
		return true
	})
}

// chanObjOf resolves an identifier to its object (use or def), so all
// mentions of one channel variable map to the same tracking entry.
func chanObjOf(p *Package, id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" || p.TypesInfo.Uses[fn] != types.Universe.Lookup("make") {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := types.Unalias(p.typeOf(call.Args[0])).(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	return len(call.Args) == 2 && isConstZero(p, call.Args[1])
}

// isChanBuiltin reports whether the call is close/len/cap — the builtins
// through which a channel does not escape.
func isChanBuiltin(p *Package, call *ast.CallExpr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	switch fn.Name {
	case "close", "len", "cap":
		return p.TypesInfo.Uses[fn] == types.Universe.Lookup(fn.Name)
	}
	return false
}

// definesIdent reports whether the assignment/spec node is the one that
// declares id (the make site we already recorded).
func definesIdent(n ast.Node, id *ast.Ident) bool {
	switch v := n.(type) {
	case *ast.AssignStmt:
		if v.Tok != token.DEFINE {
			return false
		}
		for _, l := range v.Lhs {
			if l == ast.Expr(id) {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, name := range v.Names {
			if name == id {
				return true
			}
		}
	}
	return false
}

// inGoroutine reports whether the innermost enclosing function literal is
// launched directly by a go statement (`go func(){...}()`).
func inGoroutine(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		// Is this literal the callee of a GoStmt's call?
		if i >= 2 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == ast.Expr(lit) {
				if _, ok := stack[i-2].(*ast.GoStmt); ok {
					return true
				}
			}
		}
		return false // inner literal not go-launched shields the op
	}
	return false
}

// selectEscape reports whether the channel op sits in a select clause
// that has an escape hatch: a default clause, or at least one other comm
// clause (typically <-ctx.Done()) the goroutine can take instead.
func selectEscape(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.FuncLit:
			return false // a nested function: the select is not around this op
		case *ast.SelectStmt:
			comms := 0
			hasDefault := false
			for _, c := range v.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					comms++
				}
			}
			return hasDefault || comms >= 2
		}
	}
	return false
}
