package lint

import (
	"go/ast"
	"go/token"
)

// AtomicMix guards the lock-free telemetry metrics (bit-cast Counter/Gauge)
// and any future lock-free state: once a struct field is accessed through
// sync/atomic — either old-style atomic.LoadUint64(&s.f) calls or by being
// declared as a typed atomic (atomic.Uint64, atomic.Bool, ...) — every other
// access must go through sync/atomic too. A single plain read or write
// alongside atomic ones is a data race the race detector only catches when
// the interleaving happens to occur under test.
//
// Resolution is syntactic and per package: atomic fields are collected from
// (a) struct declarations whose field types are atomic.X and (b) atomic
// call sites &recv.f inside methods, keyed by receiver type. Plain accesses
// are then flagged inside methods of the same type.
func AtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "forbid mixing atomic and plain access to the same struct field",
		Run:  runAtomicMix,
	}
}

// atomicTypeNames are the typed atomics of sync/atomic. Fields of these
// types are safe only through their methods.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

// typedAtomicMethods are the methods of typed atomics; a selector chain
// s.f.Load() is a legitimate use of a typed atomic field.
var typedAtomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true,
	"Add": true, "And": true, "Or": true,
	"CompareAndSwap": true,
}

// recvTypeName extracts the receiver's named type ("T" for (t T) and
// (t *T) alike), plus the receiver identifier name.
func recvTypeName(fd *ast.FuncDecl) (typeName, ident string, ok bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", "", false
	}
	f := fd.Recv.List[0]
	if len(f.Names) != 1 {
		return "", "", false
	}
	t := f.Type
	if st, isStar := t.(*ast.StarExpr); isStar {
		t = st.X
	}
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name, f.Names[0].Name, true
	case *ast.IndexExpr: // generic receiver T[P]
		if id, isIdent := v.X.(*ast.Ident); isIdent {
			return id.Name, f.Names[0].Name, true
		}
	}
	return "", "", false
}

type atomicField struct {
	typeName string
	field    string
}

func runAtomicMix(p *Package, r *Reporter) {
	// Pass 1: collect atomic fields across the whole package.
	typedFields := map[atomicField]bool{}  // declared as atomic.X
	calledFields := map[atomicField]bool{} // used via atomic.Op(&recv.f)
	for _, sf := range p.Files {
		atomicName, hasAtomic := importName(sf.AST, "sync/atomic")
		if !hasAtomic {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				sel, ok := f.Type.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != atomicName || !atomicTypeNames[sel.Sel.Name] {
					continue
				}
				for _, name := range f.Names {
					typedFields[atomicField{ts.Name.Name, name.Name}] = true
				}
			}
			return true
		})
		forEachFunc(sf.AST, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			typeName, recv, ok := recvTypeName(fd)
			if !ok {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, isAtomic := selectorOn(call, atomicName); !isAtomic {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
						calledFields[atomicField{typeName, sel.Sel.Name}] = true
					}
				}
				return true
			})
		})
	}
	if len(typedFields) == 0 && len(calledFields) == 0 {
		return
	}

	// Pass 2: flag plain accesses to those fields inside methods of the
	// owning type.
	for _, sf := range p.Files {
		atomicName, _ := importName(sf.AST, "sync/atomic")
		forEachFunc(sf.AST, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			typeName, recv, ok := recvTypeName(fd)
			if !ok {
				return
			}
			walkWithStack(body, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != recv {
					return true
				}
				key := atomicField{typeName, sel.Sel.Name}
				typed, called := typedFields[key], calledFields[key]
				if !typed && !called {
					return true
				}
				if allowedAtomicUse(sel, stack, atomicName, typed) {
					return true
				}
				r.Reportf(sel.Pos(), "field %s.%s is accessed atomically elsewhere but plainly here; every access must go through sync/atomic", typeName, sel.Sel.Name)
				return true
			})
		})
	}
}

// allowedAtomicUse decides whether the selector recv.f (known atomic) is
// used safely: as &recv.f passed to a sync/atomic call (old-style fields),
// or as the receiver of a typed-atomic method call recv.f.Load() (typed
// fields). Taking &recv.f outside an atomic call is allowed only for typed
// atomics (passing *atomic.Uint64 around is safe by construction).
func allowedAtomicUse(sel *ast.SelectorExpr, stack []ast.Node, atomicName string, typed bool) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	// recv.f.Method(...): parent is the outer selector, grandparent the call.
	if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == ast.Expr(sel) {
		if typed && typedAtomicMethods[outer.Sel.Name] && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(outer) {
				return true
			}
		}
		return false
	}
	// &recv.f: allowed for typed atomics anywhere; for old-style fields only
	// as an argument to a sync/atomic call.
	if un, ok := parent.(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == ast.Expr(sel) {
		if typed {
			return true
		}
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok {
				if _, isAtomic := selectorOn(call, atomicName); isAtomic {
					return true
				}
			}
		}
		return false
	}
	return false
}
