package lint

import (
	"go/ast"
	"strings"
)

// simScopeDirs are the packages whose code runs under (or feeds) the
// discrete-event simulator. Inside them, virtual time must come from the sim
// clock and randomness from an explicitly seeded *rand.Rand; wall-clock
// reads and the global math/rand source silently break seed-reproducibility
// of every regenerated table and figure. "" is the module root package,
// which hosts the Scenario facade and bench harness. Subdirectories of a
// scoped package are scoped too.
var simScopeDirs = []string{
	"",
	"internal/sim",
	"internal/netmodel",
	"internal/bench",
	"internal/gateway",
	"internal/l4",
	"internal/l7",
	"internal/sharding",
	"internal/scaling",
	"internal/workload",
	"internal/admission",
	"internal/keyserver",
	"internal/trace",
	"internal/configpush",
	"internal/policy",
	"internal/federation",
}

// inSimScope reports whether the package directory is simulation-facing.
func inSimScope(dir string) bool {
	for _, s := range simScopeDirs {
		if dir == s || (s != "" && strings.HasPrefix(dir, s+"/")) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Conversions and constructors (time.Duration, time.Unix,
// time.Date) are pure and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand package-level functions that build
// explicit sources rather than drawing from the shared global one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// SimDeterminism forbids wall-clock access and global math/rand draws in
// simulation-facing packages.
func SimDeterminism() *Analyzer {
	return &Analyzer{
		Name: "simdeterminism",
		Doc:  "forbid wall-clock and global math/rand use in simulation packages",
		Run:  runSimDeterminism,
	}
}

func runSimDeterminism(p *Package, r *Reporter) {
	if !inSimScope(p.Dir) {
		return
	}
	for _, sf := range p.Files {
		timeName, hasTime := importName(sf.AST, "time")
		randName, hasRand := importName(sf.AST, "math/rand")
		randV2Name, hasRandV2 := importName(sf.AST, "math/rand/v2")
		if !hasTime && !hasRand && !hasRandV2 {
			continue
		}
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if hasTime {
				if fn, ok := selectorOn(call, timeName); ok && wallClockFuncs[fn] {
					r.Reportf(call.Pos(), "time.%s reads the wall clock in a simulation package; derive time from the sim clock (sim.Now/After)", fn)
				}
			}
			if hasRand {
				if fn, ok := selectorOn(call, randName); ok && !randConstructors[fn] {
					r.Reportf(call.Pos(), "rand.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand", fn)
				}
			}
			if hasRandV2 {
				if fn, ok := selectorOn(call, randV2Name); ok && !randConstructors[fn] {
					r.Reportf(call.Pos(), "rand.%s draws from the global math/rand/v2 source; use an explicitly seeded *rand.Rand", fn)
				}
			}
			return true
		})
	}
}
