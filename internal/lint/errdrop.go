package lint

import (
	"go/ast"
)

// ErrDrop flags silently discarded error returns in non-test code: a call
// whose final result is an error, used as a bare statement, drops failures
// on the floor — the keyserver deadline errors PR 1 had to surface are the
// canonical example. Explicit discards (`_ = f()`) and deferred cleanup
// calls remain allowed: both are visible, deliberate decisions.
//
// Defer-position discards (`defer f.Close()`) are a documented exemption,
// not an oversight. A deferred cleanup error fires after the function's
// real work has already succeeded or failed; there is usually no caller
// left to report it to, and the only mechanical remediations — wrapping in
// `defer func() { _ = f.Close() }()` or plumbing a named error result —
// add ceremony without changing what the program does with the failure.
// Where a deferred error genuinely matters (write-back closes on durable
// state), the fix is structural (close explicitly on the success path),
// which this analyzer does flag, since the explicit close is a bare
// ExprStmt. The errdrop fixture pins the exemption so a future change that
// starts flagging defers fails the suite and forces this trade-off to be
// re-argued rather than drifting silently.
//
// Callee resolution is syntactic but module-wide: package-level functions of
// the same package, functions of any other package in this module (via the
// import name), and methods whose receiver expression's type is evident in
// the enclosing function (receiver, parameter, or local declared with an
// explicit type or composite literal). Unresolvable calls are not flagged.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flag silently discarded error returns in non-test code",
		Run:  runErrDrop,
	}
}

// errSigs is a module-wide signature index: which functions and methods
// have a final error result.
type errSigs struct {
	// funcs maps "pkgdir\x00Func" for package functions.
	funcs map[string]bool
	// methods maps "pkgdir\x00Type.Method".
	methods map[string]bool
	// dirByPath maps an import path suffix (module-relative dir) for lookup.
	module string
}

// lastResultIsError reports whether the function type's final result is
// spelled `error`.
func lastResultIsError(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// BuildErrSigs indexes every package's error-returning functions and
// methods. Exposed so the runner can build it once for all packages.
func BuildErrSigs(pkgs []*Package) *errSigs {
	sigs := &errSigs{funcs: map[string]bool{}, methods: map[string]bool{}}
	for _, p := range pkgs {
		for _, sf := range p.Files {
			for _, decl := range sf.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if !lastResultIsError(fd.Type) {
					continue
				}
				if fd.Recv == nil {
					sigs.funcs[p.Dir+"\x00"+fd.Name.Name] = true
				} else if typeName, _, ok := recvTypeName(fd); ok {
					sigs.methods[p.Dir+"\x00"+typeName+"."+fd.Name.Name] = true
				}
			}
		}
	}
	return sigs
}

// errDropSigs is set by the runner before analyzers execute; when nil, the
// analyzer indexes only the package under analysis (fixture-test mode).
var errDropSigs *errSigs

// SetErrSigs installs a module-wide signature index (call before Run).
func SetErrSigs(s *errSigs) { errDropSigs = s }

func runErrDrop(p *Package, r *Reporter) {
	sigs := errDropSigs
	if sigs == nil {
		sigs = BuildErrSigs([]*Package{p})
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		// Map import names to module-relative package dirs for
		// cross-package resolution.
		importDirs := map[string]string{}
		for _, imp := range sf.AST.Imports {
			path := imp.Path.Value
			path = path[1 : len(path)-1]
			const modPrefix = "canalmesh/"
			var dir string
			if path == "canalmesh" {
				dir = ""
			} else if len(path) > len(modPrefix) && path[:len(modPrefix)] == modPrefix {
				dir = path[len(modPrefix):]
			} else {
				continue
			}
			name := dir
			for i := len(dir) - 1; i >= 0; i-- {
				if dir[i] == '/' {
					name = dir[i+1:]
					break
				}
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			importDirs[name] = dir
		}
		forEachFunc(sf.AST, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			localTypes := localTypeTable(fd)
			ast.Inspect(body, func(n ast.Node) bool {
				// Only bare expression statements. Defers are a documented
				// exemption (see the ErrDrop doc comment and the fixture's
				// deferredDiscards); go stmts and assignments are out of
				// scope by design.
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, drops := resolvesToErrCall(call, p.Dir, importDirs, localTypes, sigs)
				if drops {
					r.Reportf(call.Pos(), "%s returns an error that is silently discarded; handle it or discard explicitly with _ =", name)
				}
				return true
			})
		})
	}
}

// localTypeTable maps identifier names to package-local type names for the
// receiver, typed parameters, and locals declared with an evident type.
func localTypeTable(fd *ast.FuncDecl) map[string]string {
	types := map[string]string{}
	bind := func(names []*ast.Ident, t ast.Expr) {
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		id, ok := t.(*ast.Ident)
		if !ok {
			return
		}
		for _, n := range names {
			types[n.Name] = id.Name
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			bind(f.Names, f.Type)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			bind(f.Names, f.Type)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := v.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if s, ok := spec.(*ast.ValueSpec); ok && s.Type != nil {
						bind(s.Names, s.Type)
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if i >= len(v.Lhs) {
					break
				}
				id, ok := v.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				switch rv := rhs.(type) {
				case *ast.CompositeLit:
					bind([]*ast.Ident{id}, rv.Type)
				case *ast.UnaryExpr:
					if cl, ok := rv.X.(*ast.CompositeLit); ok {
						bind([]*ast.Ident{id}, cl.Type)
					}
				}
			}
		}
		return true
	})
	return types
}

// resolvesToErrCall decides whether the call statement drops an error,
// returning a printable callee name.
func resolvesToErrCall(call *ast.CallExpr, dir string, importDirs map[string]string, localTypes map[string]string, sigs *errSigs) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if sigs.funcs[dir+"\x00"+fun.Name] {
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return "", false
		}
		// Cross-package function call pkg.Fn().
		if pdir, isPkg := importDirs[id.Name]; isPkg {
			if sigs.funcs[pdir+"\x00"+fun.Sel.Name] {
				return id.Name + "." + fun.Sel.Name, true
			}
			return "", false
		}
		// Method call on a value of evident package-local type.
		if typeName, ok := localTypes[id.Name]; ok {
			if sigs.methods[dir+"\x00"+typeName+"."+fun.Sel.Name] {
				return id.Name + "." + fun.Sel.Name, true
			}
		}
	}
	return "", false
}
