package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSource builds a single-file Package from source text.
func parseSource(t *testing.T, dir, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		Dir:   dir,
		Name:  f.Name.Name,
		Fset:  fset,
		Files: []SourceFile{{Name: "src.go", AST: f}},
	}
}

func TestParseDirectivesWellFormed(t *testing.T) {
	pkg := parseSource(t, "internal/sim", `package x

func f() {
	//canal:allow simdeterminism the sim harness epoch is wall-clock anchored
	g()
	h() //canal:allow errdrop best-effort cleanup, failure is logged upstream
}

func g() {}
func h() {}
`)
	dirs, bad := ParseDirectives(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected problems: %v", bad)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	if dirs[0].Analyzer != "simdeterminism" || !strings.Contains(dirs[0].Reason, "wall-clock anchored") {
		t.Errorf("directive 0 parsed as %+v", dirs[0])
	}
	if dirs[1].Analyzer != "errdrop" || !strings.Contains(dirs[1].Reason, "best-effort cleanup") {
		t.Errorf("directive 1 parsed as %+v", dirs[1])
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		name, src, wantMsg string
	}{
		{
			name:    "unknown analyzer",
			src:     "package x\n\n//canal:allow nosuchcheck because reasons\nfunc f() {}\n",
			wantMsg: `unknown analyzer "nosuchcheck"`,
		},
		{
			name:    "missing reason",
			src:     "package x\n\n//canal:allow maporder\nfunc f() {}\n",
			wantMsg: "needs a reason",
		},
		{
			name:    "empty directive",
			src:     "package x\n\n//canal:allow\nfunc f() {}\n",
			wantMsg: "needs an analyzer name and a reason",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, bad := ParseDirectives(parseSource(t, "", tc.src))
			if len(bad) != 1 {
				t.Fatalf("got %d problems, want 1: %v", len(bad), bad)
			}
			if bad[0].Analyzer != "directive" || !strings.Contains(bad[0].Message, tc.wantMsg) {
				t.Errorf("got %q, want message containing %q", bad[0].Message, tc.wantMsg)
			}
		})
	}
}

// TestParseDirectivesIgnoresLookalikes: ordinary comments mentioning the
// marker mid-text, and distinct markers, must not parse as directives.
func TestParseDirectivesIgnoresLookalikes(t *testing.T) {
	pkg := parseSource(t, "", `package x

// The //canal:allow marker is documented here but this is prose.
//canal:allowance is a different word
func f() {}
`)
	dirs, bad := ParseDirectives(pkg)
	if len(dirs) != 0 || len(bad) != 0 {
		t.Fatalf("lookalikes parsed: dirs=%v bad=%v", dirs, bad)
	}
}

func diagAt(file string, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  "boom",
	}
}

func TestApplyDirectivesMatching(t *testing.T) {
	dir := &Directive{
		Pos:      token.Position{Filename: "src.go", Line: 10},
		Analyzer: "errdrop",
		Reason:   "r",
	}
	// Same line and next line suppress; farther lines, other files, and
	// other analyzers do not.
	out := ApplyDirectives([]Diagnostic{
		diagAt("src.go", 10, "errdrop"),
		diagAt("src.go", 11, "errdrop"),
	}, []*Directive{dir})
	if len(out) != 0 {
		t.Errorf("same/next line should be suppressed, got %v", out)
	}

	for _, d := range []Diagnostic{
		diagAt("src.go", 12, "errdrop"),
		diagAt("other.go", 10, "errdrop"),
		diagAt("src.go", 10, "locksafe"),
	} {
		dir := &Directive{Pos: token.Position{Filename: "src.go", Line: 10}, Analyzer: "errdrop", Reason: "r"}
		out := ApplyDirectives([]Diagnostic{d}, []*Directive{dir})
		// The mismatched diagnostic survives and the directive reports
		// itself as stale.
		if len(out) != 2 {
			t.Fatalf("diag %v: got %d diagnostics, want surviving diag + stale directive: %v", d, len(out), out)
		}
		if out[0].Message != "boom" {
			t.Errorf("original diagnostic lost: %v", out)
		}
		if !strings.Contains(out[1].Message, "suppresses nothing") {
			t.Errorf("stale directive not reported: %v", out)
		}
	}
}

func TestApplyDirectivesUnused(t *testing.T) {
	dir := &Directive{Pos: token.Position{Filename: "src.go", Line: 3}, Analyzer: "maporder", Reason: "r"}
	out := ApplyDirectives(nil, []*Directive{dir})
	if len(out) != 1 || !strings.Contains(out[0].Message, "suppresses nothing") {
		t.Fatalf("unused directive not reported: %v", out)
	}
	if out[0].Pos.Line != 3 || out[0].Analyzer != "directive" {
		t.Errorf("unused report misplaced: %+v", out[0])
	}
}

// TestApplyDirectivesOneDirectiveManyDiags: a single directive may cover
// several diagnostics of its analyzer on the covered lines (e.g. two
// time.Now calls in one expression).
func TestApplyDirectivesOneDirectiveManyDiags(t *testing.T) {
	dir := &Directive{Pos: token.Position{Filename: "src.go", Line: 5}, Analyzer: "simdeterminism", Reason: "r"}
	out := ApplyDirectives([]Diagnostic{
		diagAt("src.go", 5, "simdeterminism"),
		diagAt("src.go", 5, "simdeterminism"),
		diagAt("src.go", 6, "simdeterminism"),
	}, []*Directive{dir})
	if len(out) != 0 {
		t.Errorf("directive should cover all diagnostics on its lines, got %v", out)
	}
}
