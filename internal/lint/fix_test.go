package lint

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempSource(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func readBack(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func diagWithEdit(file string, start, end int, newText string) Diagnostic {
	return Diagnostic{Fix: &SuggestedFix{
		Message: "test fix",
		Edits:   []TextEdit{{File: file, Start: start, End: end, NewText: newText}},
	}}
}

func TestApplyFixesRewritesAndFormats(t *testing.T) {
	src := "package p\n\nimport \"time\"\n\nvar x = time.Duration(5)\n"
	path := writeTempSource(t, src)
	old := "time.Duration(5)"
	start := strings.Index(src, old)
	res, err := ApplyFixes([]Diagnostic{diagWithEdit(path, start, start+len(old), "5*time.Nanosecond")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 0 || res.Fixed[path] != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
	got := readBack(t, path)
	if !strings.Contains(got, "5 * time.Nanosecond") {
		t.Errorf("fix not applied: %q", got)
	}
	// The rewritten file must already be gofmt-clean: formatting it again
	// changes nothing, so a -fix run can never trip the gofmt gate.
	formatted, err := format.Source([]byte(got))
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != got {
		t.Errorf("fixed file is not gofmt-clean:\n%q\nvs\n%q", got, formatted)
	}
}

func TestApplyFixesRefusesOverlap(t *testing.T) {
	src := "package p\n\nvar value = 12345\n"
	path := writeTempSource(t, src)
	start := strings.Index(src, "12345")
	diags := []Diagnostic{
		diagWithEdit(path, start, start+4, "9"),
		diagWithEdit(path, start+2, start+5, "8"),
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 1 || !strings.Contains(res.Refused[0], "overlapping") {
		t.Fatalf("want one overlap refusal, got %+v", res)
	}
	if got := readBack(t, path); got != src {
		t.Errorf("refused file was modified: %q", got)
	}
}

func TestApplyFixesDedupesIdenticalEdits(t *testing.T) {
	src := "package p\n\nvar a = 1 // stale\n"
	path := writeTempSource(t, src)
	start := strings.Index(src, " // stale")
	d := diagWithEdit(path, start, start+len(" // stale"), "")
	res, err := ApplyFixes([]Diagnostic{d, d})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 0 {
		t.Fatalf("identical duplicate edits refused: %+v", res)
	}
	if got := readBack(t, path); strings.Contains(got, "stale") {
		t.Errorf("deletion not applied: %q", got)
	}
}

// TestApplyFixesRefusesCrossAnalyzerOverlap pins the conflict policy when
// the colliding fixes come from *different* analyzers: the refusal is
// per-file and analyzer-blind. Two analyzers proposing different rewrites
// of the same span is exactly the case where guessing an order would
// silently apply one analyzer's opinion over the other's, so the file must
// be left untouched and both fixes surfaced to a human.
func TestApplyFixesRefusesCrossAnalyzerOverlap(t *testing.T) {
	src := "package p\n\nvar value = 12345\n"
	path := writeTempSource(t, src)
	start := strings.Index(src, "12345")
	a := diagWithEdit(path, start, start+5, "1")
	a.Analyzer = "unitsafe"
	b := diagWithEdit(path, start, start+5, "2")
	b.Analyzer = "deprecated"
	res, err := ApplyFixes([]Diagnostic{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 1 || !strings.Contains(res.Refused[0], "overlapping") {
		t.Fatalf("want one overlap refusal across analyzers, got %+v", res)
	}
	if res.Fixed[path] != 0 {
		t.Fatalf("conflicting file reported as fixed: %+v", res)
	}
	if got := readBack(t, path); got != src {
		t.Errorf("refused file was modified: %q", got)
	}
}

// TestApplyFixesDedupesAcrossAnalyzers pins the complementary case: when
// two analyzers propose the byte-identical edit (say, both want a stale
// comment deleted), the edits collapse and apply once — analyzer identity
// is not part of an edit, so agreement is not a conflict.
func TestApplyFixesDedupesAcrossAnalyzers(t *testing.T) {
	src := "package p\n\nvar a = 1 // stale\n"
	path := writeTempSource(t, src)
	start := strings.Index(src, " // stale")
	a := diagWithEdit(path, start, start+len(" // stale"), "")
	a.Analyzer = "directive"
	b := diagWithEdit(path, start, start+len(" // stale"), "")
	b.Analyzer = "deprecated"
	res, err := ApplyFixes([]Diagnostic{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 0 {
		t.Fatalf("identical cross-analyzer edits refused: %+v", res)
	}
	if got := readBack(t, path); strings.Contains(got, "stale") {
		t.Errorf("deletion not applied: %q", got)
	}
}

// TestApplyFixesCrossAnalyzerDisjointSameFile proves the refusal really is
// about byte overlap, not about two analyzers touching one file: disjoint
// edits from different analyzers both land.
func TestApplyFixesCrossAnalyzerDisjointSameFile(t *testing.T) {
	src := "package p\n\nvar first = 1 // one\n\nvar second = 2 // two\n"
	path := writeTempSource(t, src)
	a := diagWithEdit(path, strings.Index(src, " // one"), strings.Index(src, " // one")+len(" // one"), "")
	a.Analyzer = "unitsafe"
	b := diagWithEdit(path, strings.Index(src, " // two"), strings.Index(src, " // two")+len(" // two"), "")
	b.Analyzer = "deprecated"
	res, err := ApplyFixes([]Diagnostic{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 0 || res.Fixed[path] != 2 {
		t.Fatalf("disjoint cross-analyzer edits did not both apply: %+v", res)
	}
	got := readBack(t, path)
	if strings.Contains(got, "one") || strings.Contains(got, "two") {
		t.Errorf("edits not applied: %q", got)
	}
}

func TestApplyFixesRefusesUnparseableResult(t *testing.T) {
	src := "package p\n\nvar a = 1\n"
	path := writeTempSource(t, src)
	start := strings.Index(src, "var")
	res, err := ApplyFixes([]Diagnostic{diagWithEdit(path, start, start+3, "vrr")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Refused) != 1 || !strings.Contains(res.Refused[0], "gofmt") {
		t.Fatalf("want a does-not-gofmt refusal, got %+v", res)
	}
	if got := readBack(t, path); got != src {
		t.Errorf("unparseable fix reached disk: %q", got)
	}
}
