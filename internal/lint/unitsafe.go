package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// UnitSafe is the type-aware unit-hygiene analyzer. The simulator's
// outputs are latency tables; the classic way such tables silently drift
// is arithmetic that loses its unit — a bare number added to a duration
// (it reads as nanoseconds), a float of seconds cast straight to
// time.Duration, two durations multiplied (ns²). unitsafe rejects:
//
//   - a bare numeric literal used where a duration is expected (argument,
//     assignment, comparison, addition), unless it multiplies/divides a
//     unit constant — `100 * time.Millisecond` is the blessed spelling;
//   - unit-less conversions time.Duration(x) / sim.Time(x) of numeric
//     expressions, unless the result immediately scales a duration
//     (`time.Duration(i) * gap` is count-scaling, not a conversion bug);
//     named constructors (sim.Nanos/Micros/Millis/Seconds) and factor
//     helpers (sim.Scale, sim.Div) are the blessed conversions;
//   - direct conversions between sim.Time and time.Duration — instants
//     and durations cross only through sim.FromDuration / Time.Duration /
//     sim.ToDuration, so the crossings stay greppable;
//   - multiplying two non-constant durations.
//
// It runs on every non-main package, test files included, and only where
// type information resolved (a package with type errors degrades to
// silence rather than guessing).
func UnitSafe() *Analyzer {
	return &Analyzer{
		Name: "unitsafe",
		Doc:  "forbid unit-less duration arithmetic and conversions (type-aware)",
		Run:  runUnitSafe,
	}
}

// simTimePath returns the import path of the sim package for this module.
func simTimePath(p *Package) string {
	module := p.Module
	if module == "" {
		module = DefaultModule
	}
	return module + "/internal/sim"
}

// durKind classifies a type: 0 = not a duration, 1 = time.Duration,
// 2 = sim.Time.
func durKind(p *Package, t types.Type) int {
	if t == nil {
		return 0
	}
	if namedType(t, "time", "Duration") {
		return 1
	}
	if namedType(t, simTimePath(p), "Time") {
		return 2
	}
	return 0
}

func durKindName(k int) string {
	if k == 2 {
		return "sim.Time"
	}
	return "time.Duration"
}

// numericArg reports whether t is a numeric type a duration conversion
// could take: a basic integer/float, or a type parameter (the sim
// constructors convert their own constrained parameter).
func numericArg(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := types.Unalias(t).(*types.TypeParam); ok {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsUntyped) != 0 && b.Info()&types.IsNumeric != 0
}

func runUnitSafe(p *Package, r *Reporter) {
	if p.TypesInfo == nil || p.baseName() == "main" {
		return
	}
	for _, sf := range p.Files {
		timeName, hasTime := importName(sf.AST, "time")
		simName, isSim := "", p.Dir == "internal/sim"
		if !isSim {
			simName, _ = importName(sf.AST, simTimePath(p))
		}
		walkWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
			switch v := n.(type) {
			case *ast.BasicLit:
				checkBareLit(p, r, v, stack)
			case *ast.BinaryExpr:
				checkDurMul(p, r, v)
			case *ast.CallExpr:
				checkDurConv(p, r, v, stack, convNames{
					timeName: timeName, hasTime: hasTime,
					simName: simName, inSim: isSim,
				})
			}
			return true
		})
	}
}

// parentOf walks outward past parentheses and unary +/- and returns the
// first meaningful ancestor of the node at the top of the stack.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if v.Op == token.SUB || v.Op == token.ADD {
				continue
			}
			return v
		default:
			return v
		}
	}
	return nil
}

// otherOperand returns b's operand on the opposite side of pos.
func otherOperand(b *ast.BinaryExpr, pos token.Pos) ast.Expr {
	if pos >= b.Y.Pos() && pos < b.Y.End() {
		return b.X
	}
	return b.Y
}

// scalesDuration reports whether the expression ending the stack is an
// operand of * or / whose other side is duration-typed: the blessed
// count-times-unit idiom.
func scalesDuration(p *Package, pos token.Pos, stack []ast.Node) bool {
	b, ok := parentOf(stack).(*ast.BinaryExpr)
	if !ok || (b.Op != token.MUL && b.Op != token.QUO) {
		return false
	}
	return durKind(p, p.typeOf(otherOperand(b, pos))) > 0
}

// insideDurConversion reports whether the node is the direct argument of a
// conversion to a duration type (handled by checkDurConv, not the literal
// rule).
func insideDurConversion(p *Package, stack []ast.Node) bool {
	call, ok := parentOf(stack).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := p.TypesInfo.Types[call.Fun]
	return ok && tv.IsType() && durKind(p, tv.Type) > 0
}

// checkBareLit flags a numeric literal whose checked type is a duration:
// the unit (nanoseconds) is invisible at the call site. Literals that
// scale a unit constant (`100 * time.Millisecond`, `d / 2`) are the
// blessed idiom; zero is unit-free.
func checkBareLit(p *Package, r *Reporter, lit *ast.BasicLit, stack []ast.Node) {
	if lit.Kind != token.INT && lit.Kind != token.FLOAT {
		return
	}
	tv, ok := p.TypesInfo.Types[lit]
	if !ok || tv.Value == nil || constant.Sign(tv.Value) == 0 {
		return
	}
	k := durKind(p, tv.Type)
	if k == 0 {
		return
	}
	if b, ok := parentOf(stack).(*ast.BinaryExpr); ok && (b.Op == token.MUL || b.Op == token.QUO) {
		return
	}
	if insideDurConversion(p, stack) {
		return
	}
	if k == 1 {
		r.ReportFix(lit.Pos(), Fix{
			Message: "spell the nanosecond unit the bare literal implies",
			Edits:   []Edit{{Pos: lit.Pos(), End: lit.End(), NewText: lit.Value + "*time.Nanosecond"}},
		}, "bare numeric literal %s used as %s reads as nanoseconds; spell the unit (e.g. %s*time.Millisecond)",
			lit.Value, durKindName(k), lit.Value)
		return
	}
	r.Reportf(lit.Pos(), "bare numeric literal %s used as %s reads as nanoseconds; build the instant from a duration via sim.FromDuration",
		lit.Value, durKindName(k))
}

// isDurConversionExpr reports whether e (unwrapping parens) converts to a
// duration type — the marker that a mul/div operand is a count, not a
// duration.
func isDurConversionExpr(p *Package, e ast.Expr) bool {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = pe.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := p.TypesInfo.Types[call.Fun]
	return ok && tv.IsType() && durKind(p, tv.Type) > 0
}

// checkDurMul flags duration×duration: the product's unit is ns², which
// no latency table wants. Constant operands (3 * time.Second) and
// explicit count conversions (time.Duration(i) * gap) are exempt.
func checkDurMul(p *Package, r *Reporter, b *ast.BinaryExpr) {
	if b.Op != token.MUL {
		return
	}
	if durKind(p, p.typeOf(b.X)) == 0 || durKind(p, p.typeOf(b.Y)) == 0 {
		return
	}
	if p.isConst(b.X) || p.isConst(b.Y) {
		return
	}
	if isDurConversionExpr(p, b.X) || isDurConversionExpr(p, b.Y) {
		return
	}
	r.Reportf(b.OpPos, "multiplying two durations yields nanoseconds-squared; make one side a dimensionless count, or use sim.Scale for float factors")
}

type convNames struct {
	timeName string
	hasTime  bool
	simName  string // import name of canalmesh/internal/sim, "" if not imported
	inSim    bool   // the file IS the sim package
}

// simQualified renders a reference to a sim package function, or "" when
// the file cannot reach it (fix is withheld; the message still explains).
func (c convNames) simQualified(fn string) string {
	if c.inSim {
		return fn
	}
	if c.simName != "" {
		return c.simName + "." + fn
	}
	return ""
}

// checkDurConv polices conversions whose target is a duration type.
func checkDurConv(p *Package, r *Reporter, call *ast.CallExpr, stack []ast.Node, names convNames) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := durKind(p, tv.Type)
	if dst == 0 {
		return
	}
	arg := call.Args[0]
	// A bare literal argument is handled first: the checker records the
	// literal with the conversion's target type, so the src/dst comparison
	// below would mistake it for a redundant same-type conversion.
	if lit, ok := bareLiteral(arg); ok {
		if constant.Sign(constantOf(p, arg)) == 0 {
			return // Duration(0) is unit-free
		}
		if scalesDuration(p, call.Pos(), stack) {
			return // time.Duration(2) * unit — a count, not a conversion bug
		}
		// The whole-call rewrite is only sign-safe when the argument is
		// the literal itself (no unary minus or parens to preserve).
		if dst == 1 && names.hasTime && names.timeName == "time" && arg == ast.Expr(lit) {
			r.ReportFix(call.Pos(), Fix{
				Message: "spell the nanosecond unit the conversion implies",
				Edits:   []Edit{{Pos: call.Pos(), End: call.End(), NewText: lit.Value + "*time.Nanosecond"}},
			}, "conversion of bare literal %s to %s hides the nanosecond unit; spell it (%s*time.Nanosecond) or use a sim constructor",
				lit.Value, durKindName(dst), lit.Value)
		} else {
			r.Reportf(call.Pos(), "conversion of bare literal %s to %s hides the nanosecond unit; spell a unit or use a sim constructor",
				lit.Value, durKindName(dst))
		}
		return
	}
	src := durKind(p, p.typeOf(arg))
	if src == dst {
		return // redundant but harmless
	}
	if src != 0 {
		// sim.Time <-> time.Duration must cross through the named helpers,
		// so unit-boundary crossings stay greppable.
		var repl string
		if dst == 2 {
			repl = names.simQualified("FromDuration")
		} else {
			repl = names.simQualified("ToDuration")
		}
		msg := "direct %s(...) conversion between sim.Time and time.Duration; cross through sim.FromDuration / sim.ToDuration / Time.Duration"
		if repl != "" {
			r.ReportFix(call.Fun.Pos(), Fix{
				Message: "use the named instant/duration crossing helper",
				Edits:   []Edit{{Pos: call.Fun.Pos(), End: call.Fun.End(), NewText: repl}},
			}, msg, durKindName(dst))
		} else {
			r.Reportf(call.Fun.Pos(), msg, durKindName(dst))
		}
		return
	}
	if !numericArg(p.typeOf(arg)) {
		return
	}
	if scalesDuration(p, call.Pos(), stack) {
		return // time.Duration(i) * unit — a count, not a conversion bug
	}
	// Non-literal numeric expression: Duration(x) silently decides x is in
	// nanoseconds (or, for float scaling expressions, that the maths kept
	// its units straight). Name the unit instead.
	if isConstZero(p, arg) {
		return
	}
	if fix := names.simQualified("Nanos"); fix != "" && dst == 1 && isIntegerExpr(p, arg) {
		r.ReportFix(call.Fun.Pos(), Fix{
			Message: "name the nanosecond unit with the sim constructor",
			Edits:   []Edit{{Pos: call.Fun.Pos(), End: call.Fun.End(), NewText: fix}},
		}, "unit-less conversion to %s; name the unit with sim.Nanos/Micros/Millis, sim.Seconds for float seconds, or sim.Scale/sim.Div for factor scaling",
			durKindName(dst))
		return
	}
	r.Reportf(call.Fun.Pos(), "unit-less conversion to %s; name the unit with sim.Nanos/Micros/Millis, sim.Seconds for float seconds, or sim.Scale/sim.Div for factor scaling",
		durKindName(dst))
}

// bareLiteral unwraps parens and unary sign and returns the numeric
// literal beneath, if that is all the expression is.
func bareLiteral(e ast.Expr) (*ast.BasicLit, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.SUB && v.Op != token.ADD {
				return nil, false
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind == token.INT || v.Kind == token.FLOAT {
				return v, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func constantOf(p *Package, e ast.Expr) constant.Value {
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	return constant.MakeInt64(1) // unknown: treat as nonzero
}

func isConstZero(p *Package, e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
}

// isIntegerExpr reports whether e's checked type is integer-kinded (so
// sim.Nanos, whose constraint is the integer kinds, can take it).
func isIntegerExpr(p *Package, e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
