package lint

import (
	"fmt"
	"sort"
)

// TransDeterminism extends the simdeterminism rules through the call
// graph: a simulation-facing package must not reach the wall clock or the
// global math/rand source *transitively* through helper packages either.
// The syntactic analyzer catches `time.Now()` written inside sim scope;
// this one catches the sim-scope call into an out-of-scope helper whose
// subgraph reads the clock three frames down — the escape hatch that
// silently breaks seed-reproducibility of every regenerated table.
//
// Propagation runs only through out-of-scope, non-test nodes: once a path
// re-enters sim scope, any nondeterminism there is simdeterminism's
// jurisdiction (and its //canal:allow annotations), so nothing is reported
// twice. Test functions are exempt as call sites, matching the syntactic
// analyzer's tolerance for wall-clock use in test harness code.
func TransDeterminism() *Analyzer {
	return &Analyzer{
		Name: "transdeterminism",
		Doc:  "forbid sim-scope code from reaching the wall clock or global math/rand transitively through helper packages",
		Run:  runTransDeterminism,
	}
}

func runTransDeterminism(p *Package, r *Reporter) {
	for _, d := range graphFor(p).transDetFindings() {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}

// transDetFindings computes the module-wide transdeterminism diagnostics
// once.
func (g *CallGraph) transDetFindings() []Diagnostic {
	if g.tdDone {
		return g.tdDiags
	}
	g.tdDone = true
	outScope := func(n *FuncNode) bool { return !inSimScope(n.Dir) }
	reachMemo := map[string]map[string]walkStep{}
	type site struct {
		file string
		off  int
	}
	reported := map[site]bool{}
	for _, key := range g.keys {
		n := g.Nodes[key]
		if n.Test || !inSimScope(n.Dir) {
			continue
		}
		for _, e := range n.Calls {
			cn := g.Nodes[e.Callee]
			if cn == nil || cn.Test || inSimScope(cn.Dir) {
				continue
			}
			s := site{file: e.Position.Filename, off: e.Position.Offset}
			if reported[s] {
				continue
			}
			seen, ok := reachMemo[e.Callee]
			if !ok {
				seen = g.reach(e.Callee, outScope)
				reachMemo[e.Callee] = seen
			}
			taintKey, fact := g.firstNondet(seen)
			if taintKey == "" {
				continue
			}
			reported[s] = true
			via := ""
			if taintKey != e.Callee {
				via = " (via " + g.chain(seen, e.Callee, taintKey) + ")"
			}
			g.tdDiags = append(g.tdDiags, Diagnostic{
				Pos: e.Position,
				Message: fmt.Sprintf("%s reaches nondeterminism: %s at %s%s; sim-scope code must stay seed-deterministic even through helpers",
					g.shortKey(e.Callee), fact.What,
					baseLine(fact.Position.Filename, fact.Position.Line), via),
			})
		}
	}
	return g.tdDiags
}

// firstNondet returns the first (by sorted key, then source order) reached
// node holding a wall-clock or global-rand fact, with that fact.
func (g *CallGraph) firstNondet(seen map[string]walkStep) (string, Fact) {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := g.Nodes[k]
		if n == nil || n.Test {
			continue
		}
		for _, f := range n.Facts {
			if f.Kind == FactWallClock || f.Kind == FactGlobalRand {
				return k, f
			}
		}
	}
	return "", Fact{}
}
