package lint

import (
	"go/ast"
	"go/token"
)

// MapOrder flags range-over-map loops whose iteration order leaks into
// results: bodies that append map-derived values to a slice declared outside
// the loop with no subsequent sort of that slice, or that print/write output
// directly per iteration. Go randomizes map iteration order per run, so
// either pattern makes output differ between identically-seeded runs.
//
// The blessed idiom is Backend.Services (internal/gateway/gateway.go):
// collect into a slice, then sort before returning.
//
// Map detection is syntactic: the range subject must resolve to a
// declaration spelled with a map type — a var/param/field declared
// map[...]..., or assigned make(map[...]) or a map composite literal —
// visible in the same package. Ranging over expressions the analyzer cannot
// resolve is not flagged (under-reporting is the acceptable direction for a
// linter).
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map-range loops that leak iteration order into results",
		Run:  runMapOrder,
	}
}

// mapSymbols records, per package, which names are declared with literal map
// types: plain identifiers (vars, params) and struct field names qualified
// by their struct type, plus a bare field-name fallback used when the
// receiver type of a selector cannot be resolved syntactically.
type mapSymbols struct {
	idents map[string]bool // package-level vars and, per-function, locals/params
	fields map[string]bool // "Type.field" and bare "field"
	// nonMapFields holds bare field names also declared with a non-map type
	// somewhere in the package; such names are ambiguous through an
	// unresolvable selector base and are skipped (under-report, never guess).
	nonMapFields map[string]bool
}

func isMapType(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.MapType:
		return true
	case *ast.ParenExpr:
		return isMapType(v.X)
	}
	return false
}

// mapValuedExpr reports whether e is an expression that is evidently a map:
// make(map[...]), a map composite literal, or a map type conversion.
func mapValuedExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return isMapType(v.Args[0])
		}
		return isMapType(v.Fun)
	case *ast.CompositeLit:
		return isMapType(v.Type)
	case *ast.UnaryExpr:
		return false
	}
	return false
}

func collectMapSymbols(p *Package) *mapSymbols {
	syms := &mapSymbols{idents: make(map[string]bool), fields: make(map[string]bool), nonMapFields: make(map[string]bool)}
	addFieldList := func(typeName string, fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if isMapType(f.Type) {
					syms.fields[name.Name] = true
					if typeName != "" {
						syms.fields[typeName+"."+name.Name] = true
					}
				} else {
					syms.nonMapFields[name.Name] = true
				}
			}
		}
	}
	for _, sf := range p.Files {
		for _, decl := range sf.AST.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if st, ok := s.Type.(*ast.StructType); ok {
							addFieldList(s.Name.Name, st.Fields)
						}
					case *ast.ValueSpec:
						if s.Type != nil && isMapType(s.Type) {
							for _, n := range s.Names {
								syms.idents[n.Name] = true
							}
						}
						for i, v := range s.Values {
							if mapValuedExpr(v) && i < len(s.Names) {
								syms.idents[s.Names[i].Name] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				// Params and named results with map types count as idents;
				// locals are collected below from the whole file walk.
				if d.Type.Params != nil {
					for _, f := range d.Type.Params.List {
						if isMapType(f.Type) {
							for _, n := range f.Names {
								syms.idents[n.Name] = true
							}
						}
					}
				}
			}
		}
		// Local declarations: var statements and := / = assignments of
		// evident map values anywhere in the file.
		ast.Inspect(sf.AST, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if mapValuedExpr(rhs) && i < len(v.Lhs) {
						switch lhs := v.Lhs[i].(type) {
						case *ast.Ident:
							syms.idents[lhs.Name] = true
						case *ast.SelectorExpr:
							syms.fields[lhs.Sel.Name] = true
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := v.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if s, ok := spec.(*ast.ValueSpec); ok && s.Type != nil && isMapType(s.Type) {
							for _, name := range s.Names {
								syms.idents[name.Name] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return syms
}

// rangesMap reports whether the range subject resolves to a known map.
func (syms *mapSymbols) rangesMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return syms.idents[v.Name]
	case *ast.SelectorExpr:
		return syms.fields[v.Sel.Name] && !syms.nonMapFields[v.Sel.Name]
	case *ast.ParenExpr:
		return syms.rangesMap(v.X)
	}
	return false
}

// emitFuncs are printing/writing calls that make loop-body output
// order-dependent no matter what happens afterwards.
var emitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(p *Package, r *Reporter) {
	syms := collectMapSymbols(p)
	for _, sf := range p.Files {
		fmtName, hasFmt := importName(sf.AST, "fmt")
		sortName, hasSort := importName(sf.AST, "sort")
		if !hasSort {
			sortName = "sort"
		}
		walkWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !syms.rangesMap(rng.X) {
				return true
			}
			appended, emitted := loopLeaks(rng, fmtName, hasFmt)
			for _, pos := range emitted {
				r.Reportf(pos, "output emitted inside a map-range loop is iteration-order dependent; collect keys and sort first (see Backend.Services)")
			}
			for name, pos := range appended {
				if sortedAfter(rng, stack, name, sortName) {
					continue
				}
				r.Reportf(pos, "slice %q built from map-range iteration is never sorted; map order varies per run (sort it, or range over sorted keys)", name)
			}
			return true
		})
	}
}

// loopLeaks scans a map-range body for order leaks: appends to slices
// declared outside the loop (returned keyed by slice name with the first
// offending position) and direct emit calls.
func loopLeaks(rng *ast.RangeStmt, fmtName string, hasFmt bool) (map[string]token.Pos, []token.Pos) {
	// Names declared inside the loop body (and the range vars themselves)
	// cannot outlive an iteration ordering-visibly unless appended onward,
	// which a later pass would catch at that site; track them to skip.
	local := map[string]bool{}
	if id, ok := rng.Key.(*ast.Ident); ok {
		local[id.Name] = true
	}
	if id, ok := rng.Value.(*ast.Ident); ok {
		local[id.Name] = true
	}
	appended := map[string]token.Pos{}
	var emitted []token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
			for i, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(v.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				var target string
				switch lhs := v.Lhs[i].(type) {
				case *ast.Ident:
					if local[lhs.Name] {
						continue
					}
					target = lhs.Name
				case *ast.SelectorExpr:
					target = exprString(lhs)
				default:
					continue
				}
				if _, seen := appended[target]; !seen {
					appended[target] = call.Pos()
				}
			}
		case *ast.CallExpr:
			if hasFmt {
				if fn, ok := selectorOn(v, fmtName); ok && emitFuncs[fn] {
					emitted = append(emitted, v.Pos())
				}
			}
		}
		return true
	})
	return appended, emitted
}

// sortedAfter reports whether, in the block enclosing the range statement, a
// later statement calls sort.* mentioning the named slice (directly or
// inside a closure argument, covering sort.Slice(out, func...)).
func sortedAfter(rng *ast.RangeStmt, stack []ast.Node, name, sortName string) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	past := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			past = true
			continue
		}
		if !past {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := selectorOn(call, sortName); !ok || fn == "" {
				return true
			}
			for _, arg := range call.Args {
				mentions := false
				ast.Inspect(arg, func(m ast.Node) bool {
					switch e := m.(type) {
					case *ast.Ident:
						if e.Name == name {
							mentions = true
						}
					case *ast.SelectorExpr:
						if exprString(e) == name {
							mentions = true
						}
					}
					return !mentions
				})
				if mentions {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
