// Package fixture exercises locksafe.
package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

type wrapper struct {
	inner store // mutex-bearing through one level
}

type plain struct {
	n int
}

// leakyGet returns while holding the lock on the error path.
func (s *store) leakyGet(k string) (int, bool) {
	s.mu.Lock() // want "s.mu is locked here but a return path may exit without unlocking"
	v, ok := s.vals[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// deferredGet is the blessed form.
func (s *store) deferredGet(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// closureUnlock releases via a deferred closure; also fine.
func (s *store) closureUnlock(k string) int {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
	return s.vals[k]
}

// manualPaths unlocks before every return; the linear scan accepts it.
func (s *store) manualPaths(k string) int {
	s.mu.Lock()
	if v, ok := s.vals[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// byValue passes the mutex-bearing struct by value.
func byValue(s store) int { // want "parameter passes mutex-bearing struct store by value"
	return len(s.vals)
}

// valueRecv is a value receiver on a transitively mutex-bearing struct.
func (w wrapper) valueRecv() int { // want "receiver passes mutex-bearing struct wrapper by value"
	return len(w.inner.vals)
}

// pointerRecv is fine, as are values of mutex-free structs.
func (w *wrapper) pointerRecv() int { return len(w.inner.vals) }

func plainByValue(p plain) int { return p.n }
