// Package fixture exercises the //canal:allow directive pipeline. The test
// harness runs the full suite over it (posed as a simulation package) and
// checks which diagnostics survive suppression.
package fixture

import "time"

// inline suppression on the offending line itself.
func inlineAllowed() time.Time {
	return time.Now() //canal:allow simdeterminism fixture exercises inline suppression
}

// standalone suppression on the line above.
func aboveAllowed() time.Time {
	//canal:allow simdeterminism fixture exercises above-line suppression
	return time.Now()
}

// wrongAnalyzer suppresses the wrong analyzer, so the diagnostic survives
// and the directive is reported as suppressing nothing.
func wrongAnalyzer() time.Time {
	return time.Now() //canal:allow maporder wrong analyzer for this line // want "time.Now reads the wall clock" "canal:allow maporder suppresses nothing"
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer() time.Time {
	return time.Now() //canal:allow wallclock not a real analyzer // want "time.Now reads the wall clock" "canal:allow names unknown analyzer \"wallclock\""
}

// missingReason has no justification. The want+1 expectations apply to the
// next line, since trailing text would read as the directive's reason.
func missingReason() time.Time {
	// want+1 "time.Now reads the wall clock" "canal:allow simdeterminism needs a reason"
	return time.Now() //canal:allow simdeterminism
}

// unused sits on a clean line and must be reported as stale.
func unused() int {
	//canal:allow simdeterminism nothing here violates anything // want "canal:allow simdeterminism suppresses nothing"
	return 42
}
