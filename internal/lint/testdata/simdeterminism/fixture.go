// Package fixture exercises simdeterminism: loaded by the tests once as a
// simulation package (everything marked `want` must fire) and once as an
// out-of-scope package (nothing may fire).
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() {
	_ = time.Now()                     // want "time.Now reads the wall clock"
	_ = time.Since(time.Time{})        // want "time.Since reads the wall clock"
	time.Sleep(time.Millisecond)       // want "time.Sleep reads the wall clock"
	<-time.After(time.Millisecond)     // want "time.After reads the wall clock"
	_ = time.NewTimer(time.Second)     // want "time.NewTimer reads the wall clock"
	_ = time.Duration(3) * time.Second // conversions and constants are fine
	_ = time.Unix(0, 0)                // pure construction is fine
}

func globalRand() {
	_ = rand.Intn(10)                   // want "rand.Intn draws from the global math/rand source"
	_ = rand.Float64()                  // want "rand.Float64 draws from the global math/rand source"
	rand.Shuffle(1, swap)               // want "rand.Shuffle draws from the global math/rand source"
	rng := rand.New(rand.NewSource(42)) // explicit seeding is the blessed idiom
	_ = rng.Intn(10)                    // draws from a seeded *rand.Rand are fine
	_ = rand.NewZipf(rng, 1.1, 1, 100)
}

func swap(i, j int) {}
