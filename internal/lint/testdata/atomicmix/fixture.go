// Package fixture exercises atomicmix.
package fixture

import "sync/atomic"

// counter mixes old-style atomic calls with a plain read and write.
type counter struct {
	n    uint64
	safe uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.safe, 1)
}

func (c *counter) bad() uint64 {
	c.n = 0    // want "field counter.n is accessed atomically elsewhere but plainly here"
	return c.n // want "field counter.n is accessed atomically elsewhere but plainly here"
}

func (c *counter) good() uint64 {
	return atomic.LoadUint64(&c.safe)
}

// gauge uses a typed atomic; method calls are fine, a raw copy is not.
type gauge struct {
	bits atomic.Uint64
}

func (g *gauge) set(v uint64) { g.bits.Store(v) }

func (g *gauge) load() uint64 { return g.bits.Load() }

func (g *gauge) leak() atomic.Uint64 {
	return g.bits // want "field gauge.bits is accessed atomically elsewhere but plainly here"
}

func (g *gauge) ptr() *atomic.Uint64 {
	return &g.bits // taking the address of a typed atomic is safe
}

// plain has no atomic access anywhere; ordinary use stays quiet.
type plain struct {
	n uint64
}

func (p *plain) inc() { p.n++ }
