// Package fixture exercises maporder.
package fixture

import (
	"fmt"
	"sort"
)

type registry struct {
	services map[uint64]bool
	names    []string
}

// unsortedAppend leaks map order into the returned slice.
func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "slice \"out\" built from map-range iteration is never sorted"
	}
	return out
}

// sortedAppend is the blessed Backend.Services idiom: collect, then sort.
func sortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortSlice covers the sort.Slice(out, func...) closure form.
func sortSlice(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// emit prints per iteration; no later sort can repair the order.
func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output emitted inside a map-range loop is iteration-order dependent"
	}
}

// fieldRange resolves the map through a struct field.
func (r *registry) fieldRange() {
	for id := range r.services {
		r.names = append(r.names, fmt.Sprint(id)) // want "slice \"r.names\" built from map-range iteration"
	}
}

// sliceRange must stay quiet: ranging a slice is ordered.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// innerUse must stay quiet: the appended slice is loop-local.
func innerUse(m map[string]int) int {
	total := 0
	for _, v := range m {
		local := []int{}
		local = append(local, v)
		total += local[0]
	}
	return total
}
