// Fixture for hotpath directive handling through the full pipeline: one
// justified suppression and one rotted directive that must surface stale.
package l7

// Spray is hot but its growth is consciously amortized.
//
//canal:hotpath
func Spray(dst []int, n int) []int {
	//canal:allow hotpath fixture: growth is amortized against preallocated capacity
	dst = append(dst, n)
	return dst
}

// Quiet is hot and clean, yet carries a directive with nothing to
// suppress.
//
//canal:hotpath
func Quiet(n int) int {
	// want+1 "canal:allow hotpath suppresses nothing"
	//canal:allow hotpath fixture: rotted justification kept to prove staleness detection
	return n * 2
}
