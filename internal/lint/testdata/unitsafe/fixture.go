// Package sim is the unitsafe fixture. The test poses it as
// canalmesh/internal/sim, so the Time type below resolves as the real
// instant type and the sim.Time crossing rules apply to it.
package sim

import "time"

// Time mirrors the real sim.Time under the posed import path.
type Time time.Duration

// FromDuration's own body is the crossing the analyzer polices; the real
// package carries a //canal:allow here.
func FromDuration(d time.Duration) Time { return Time(d) } // want "conversion between sim.Time and time.Duration"

// Nanos mirrors the real constructor; its body is the unit-less
// conversion it exists to replace.
func Nanos(n int64) time.Duration { return time.Duration(n) } // want "unit-less conversion to time.Duration"

const interval = 50 * time.Millisecond // scaling a unit constant is the blessed spelling

func bareLiterals(d time.Duration) time.Duration {
	var x time.Duration = 1500 // want "bare numeric literal 1500"
	x += 20                    // want "bare numeric literal 20"
	if d > 90 {                // want "bare numeric literal 90"
		return d / 2 // dividing by a count is fine
	}
	return x + 3*time.Second
}

func bareInstant() Time {
	return 99 // want "bare numeric literal 99 used as sim.Time"
}

func conversions(n int, f float64, gap time.Duration) time.Duration {
	a := time.Duration(n)       // want "unit-less conversion to time.Duration"
	b := time.Duration(f * 1e6) // want "unit-less conversion to time.Duration"
	c := time.Duration(n) * gap // scaling a duration by a count, not a conversion bug
	z := time.Duration(0)       // zero is unit-free
	e := time.Duration(25)      // want "conversion of bare literal 25"
	return a + b + c + z + e
}

func instantConversions(n int) Time {
	return Time(n) // want "unit-less conversion to sim.Time"
}

func crossings(t Time, d time.Duration) {
	_ = time.Duration(t) // want "conversion between sim.Time and time.Duration"
	_ = Time(d)          // want "conversion between sim.Time and time.Duration"
	_ = FromDuration(d)  // the named crossing point is the fix
}

func products(a, b time.Duration) time.Duration {
	x := a * b // want "nanoseconds-squared"
	y := 3 * time.Second
	z := interval * 2 // constant operands are calibration, not a unit bug
	return x + y + z
}
