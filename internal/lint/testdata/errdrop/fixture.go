// Package fixture exercises errdrop.
package fixture

import "fmt"

type flusher struct {
	n int
}

func (f *flusher) Flush() error {
	if f.n == 0 {
		return fmt.Errorf("empty")
	}
	return nil
}

func (f *flusher) Count() int { return f.n }

func save(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	return nil
}

func report() string { return "ok" }

func drops(f *flusher) {
	save("x")     // want "save returns an error that is silently discarded"
	f.Flush()     // want "f.Flush returns an error that is silently discarded"
	_ = save("x") // explicit discard is a visible decision
	if err := save("y"); err != nil {
		_ = err
	}
	defer f.Flush() // deferred cleanup is out of scope by design
	report()        // no error result; quiet
	f.Count()       // no error result; quiet
}

func localLit() {
	g := &flusher{n: 1}
	g.Flush() // want "g.Flush returns an error that is silently discarded"
}

// deferredDiscards pins the audited defer exemption: a deferred cleanup
// call discarding its error is NOT flagged, in any resolvable form —
// package function, method on a parameter, or method on a local. If a
// future change makes any of these lines report, this fixture fails and
// the exemption documented on ErrDrop has to be re-argued explicitly.
func deferredDiscards(f *flusher) {
	defer save("deferred")
	defer f.Flush()
	g := &flusher{n: 2}
	defer g.Flush()
	// The same calls in statement position still report, so the exemption
	// is exactly defer-shaped, not a hole in callee resolution.
	save("deferred") // want "save returns an error that is silently discarded"
}
