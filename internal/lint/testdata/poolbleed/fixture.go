// poolbleed single-directory fixture: exercises the engine's per-package
// fallback (no module-wide taint engine installed).
package bufpool

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func PutDirty(b *bytes.Buffer) {
	pool.Put(b) // want "b is returned to the pool without a reset"
}

func PutClean(b *bytes.Buffer) {
	b.Reset()
	pool.Put(b)
}

func PutFresh() {
	// A value constructed at the Put site holds no previous request.
	pool.Put(new(bytes.Buffer))
}
