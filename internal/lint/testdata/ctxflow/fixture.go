// Package gateway is the ctxflow fixture: non-main, non-test code must
// thread the context it received instead of minting root contexts.
package gateway

import "context"

func threaded(ctx context.Context) error {
	return work(ctx) // threading the parameter is the point
}

func rethreads(ctx context.Context) error {
	return work(context.Background()) // want "discards the in-scope context; thread ctx"
}

func nested(ctx context.Context) {
	f := func() error {
		return work(context.TODO()) // want "discards the in-scope context; thread ctx"
	}
	_ = f()
}

func orphan() error {
	return work(context.Background()) // want "mints a root context"
}

func blind(_ context.Context) error {
	return work(context.TODO()) // want "mints a root context"
}

func work(ctx context.Context) error { return ctx.Err() }
