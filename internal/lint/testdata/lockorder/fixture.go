// Fixture for the lockorder analyzer: self-reacquisition, nested read
// locks, transitive reacquisition through a call, an in-package cycle, and
// the negatives — sequential holds and distinct instances of one class.
package overlay

import "sync"

// Reg is a registry guarded by one mutex.
type Reg struct {
	mu sync.Mutex
	n  int
}

// Relock reacquires the same expression while held: guaranteed deadlock.
func (r *Reg) Relock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want "self-deadlock: r.mu is already held"
	r.n++
}

// Table is guarded by a read-write mutex.
type Table struct {
	mu sync.RWMutex
	m  map[string]int
}

// GetTwice read-locks the same expression twice in one body: deadlocks
// once a writer queues between the two.
func (t *Table) GetTwice(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.mu.RLock() // want "nested RLock of t.mu"
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

// Size calls locked() while holding t.mu: the callee reacquires it.
func (t *Table) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.locked() // want "call into internal/overlay.(*Table).locked reacquires internal/overlay.Table.mu"
}

// locked takes t.mu itself.
func (t *Table) locked() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// Pool and Cache form an in-package lock-order cycle.
type Pool struct{ mu sync.Mutex }

// Cache pairs with Pool.
type Cache struct{ mu sync.Mutex }

// FillThenTrim takes Pool.mu then Cache.mu.
func FillThenTrim(p *Pool, c *Cache) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c.mu.Lock() // want "lock-order cycle between internal/overlay.Pool.mu and internal/overlay.Cache.mu"
	c.mu.Unlock()
}

// TrimThenFill takes them in the reverse order.
func TrimThenFill(p *Pool, c *Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p.mu.Lock() // want "lock-order cycle between internal/overlay.Cache.mu and internal/overlay.Pool.mu"
	p.mu.Unlock()
}

// Spare exists so the sequential negative uses classes with no other
// ordering edges.
type Spare struct{ mu sync.Mutex }

// Extra pairs with Spare in the sequential negatives.
type Extra struct{ mu sync.Mutex }

// Sequential releases the first lock before taking the second: no edge.
func Sequential(s *Spare, x *Extra) {
	s.mu.Lock()
	s.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

// SequentialReverse would close a Spare/Extra cycle if hold ranges were
// ignored; with correct ranges both functions contribute nothing.
func SequentialReverse(s *Spare, x *Extra) {
	x.mu.Lock()
	x.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// Pair locks two distinct Pool instances: same class, no order defined, so
// instance conflation must not manufacture a self-cycle.
func Pair(a, b *Pool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
