// Fixture for the hotpath analyzer: //canal:hotpath roots, direct fact
// violations, transitive ones with call chains, CHA dispatch, and the
// silence of unreachable code.
package l7

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

var sink []int

var ch = make(chan int, 1)

// Hot is an annotated root: every banned fact below is a finding.
//
//canal:hotpath
func Hot(n int, s string) string {
	buf := make([]byte, n) // want "make allocates in hot-path function internal/l7.Hot"
	mu.Lock()              // want "acquires mu (sync.Mutex) in hot-path function internal/l7.Hot"
	mu.Unlock()
	ch <- n                       // want "channel send may block in hot-path function internal/l7.Hot"
	label := fmt.Sprintf("%d", n) // want "calls fmt.Sprintf in hot-path function internal/l7.Hot" "argument boxes int into interface parameter of fmt.Sprintf"
	out := s + label              // want "string concatenation allocates in hot-path function internal/l7.Hot"
	_ = buf
	return grow(out)
}

// grow is unannotated but reachable from Hot, so its facts land on Hot's
// hot path with the call chain spelled out.
func grow(s string) string {
	sink = append(sink, len(s)) // want "append may grow its backing array on the hot path of internal/l7.Hot (via internal/l7.Hot -> internal/l7.grow)"
	return s
}

// step is dispatched through CHA: the analyzer must fan out to every
// non-test implementation.
type step interface{ run() }

type allocStep struct{}

func (allocStep) run() {
	sink = append(sink, 1) // want "append may grow its backing array on the hot path of internal/l7.Dispatch (via internal/l7.Dispatch -> internal/l7.(allocStep).run)"
}

type quietStep struct{ n int }

func (q quietStep) run() { q.n++ }

// Dispatch is a hot root whose only violation hides behind an interface.
//
//canal:hotpath
func Dispatch(s step) { s.run() }

// Cold has the same shape as Hot but no annotation and no hot caller:
// reachability, not syntax, drives the analyzer.
func Cold(n int) []byte {
	return make([]byte, n)
}
