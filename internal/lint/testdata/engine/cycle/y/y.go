package y

import "cycle/x"

func Y() int { return x.X() }
