module cycle

go 1.23
