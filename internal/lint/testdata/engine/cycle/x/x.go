// Package x half of the import cycle x <-> y: the engine must report the
// cycle as a typecheck diagnostic, not hang or overflow resolving it.
package x

import "cycle/y"

func X() int { return y.Y() }
