module canalmesh

go 1.23
