// Package bufpool is the poolbleed half of the taint fixture: every
// recognized reset idiom keeps a Put quiet, and a dirty Put fires.
package bufpool

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
var slicePool = sync.Pool{New: func() any { return make([]byte, 0, 512) }}
var entryPool = sync.Pool{New: func() any { return new(Entry) }}
var mapPool = sync.Pool{New: func() any { return map[string]string{} }}

// Entry is a reusable per-request record.
type Entry struct {
	Tenant string
	Body   []byte
}

// PutDirty returns the buffer still holding this request's bytes.
func PutDirty(b *bytes.Buffer) {
	bufPool.Put(b) // want "b is returned to the pool without a reset"
}

// PutReset is the correct shape: Reset before Put.
func PutReset(b *bytes.Buffer) {
	b.Reset()
	bufPool.Put(b)
}

// PutResliced truncates the slice to zero length before pooling it.
func PutResliced(buf []byte) {
	buf = buf[:0]
	slicePool.Put(buf)
}

// PutZeroed zeroes the record with an empty composite before pooling.
func PutZeroed(e *Entry) {
	*e = Entry{}
	entryPool.Put(e)
}

// PutCleared uses the clear builtin on a pooled map.
func PutCleared(m map[string]string) {
	clear(m)
	mapPool.Put(m)
}

// PutFieldDirty pools a field without resetting it.
func PutFieldDirty(e *Entry) {
	entryPool.Put(e) // want "e is returned to the pool without a reset"
}

// PutFieldReset resets through a field path: the prefix match accepts it.
func PutFieldReset(e *Entry) {
	e.Body = e.Body[:0]
	entryPool.Put(e)
}
