// Package state is the sharedmut half of the taint fixture: package-level
// writes from request-path functions, with the lock and tenant-key escape
// hatches, plus the tenantflow unkeyed-store rule.
package state

import (
	"sync"

	"canalmesh/internal/l7"
)

var (
	mu        sync.Mutex
	hits      int
	locked    int
	last      string
	perTenant = map[string]int{}
	responses = map[string]string{}
)

// Handle reads a taint source, making it a request-path root; its own
// write and the one through bump are both unguarded.
func Handle(req *l7.Request) {
	_ = req.Path
	hits++ // want "package-level internal/state.hits written without a lock or tenant key in request-path function internal/state.Handle"
	bump()
}

func bump() {
	deep() // bump itself writes nothing, keeping the chain two hops long
}

func deep() {
	last = "marker" // want "on the request path of internal/state.Handle (via internal/state.Handle -> internal/state.bump -> internal/state.deep)"
}

// Locked holds the mutex across the write: quiet.
func Locked(req *l7.Request) {
	_ = req.Path
	mu.Lock()
	locked++
	mu.Unlock()
}

// Keyed indexes the shared map by the tenant identity: quiet.
func Keyed(req *l7.Request) {
	perTenant[req.Tenant]++
}

// Remember stores source-derived payload unkeyed: both the isolation rule
// (sharedmut) and the taint rule (tenantflow) fire on the same write.
func Remember(req *l7.Request) {
	last = req.Path // want "stored in package-level internal/state.last" "package-level internal/state.last written without a lock or tenant key"
}

// Cache stores the same payload keyed by the tenant: both rules quiet.
func Cache(req *l7.Request) {
	responses[req.Tenant] = req.Path
}

// Offline writes the same state but is reachable from no request-path
// root: sharedmut stays quiet (the race detector's territory, not the
// isolation engine's).
func Offline() {
	hits = 0
}
