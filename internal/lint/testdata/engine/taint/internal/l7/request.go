// Package l7 poses as the module's request struct so the fixture exercises
// the engine's real source table: Tenant is identity, everything else is
// payload.
package l7

// Request mirrors the real l7.Request shape the sourceTypes table keys on.
type Request struct {
	Tenant string
	Method string
	Path   string
}
