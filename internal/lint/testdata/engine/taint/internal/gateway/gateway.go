// Package gateway is the tenantflow half of the taint fixture: direct
// sinks, keyed sinks, interprocedural chains through summaries, boundary
// stops, summary recursion, the tenant-header special case, and directive
// suppression/staleness.
package gateway

import (
	"net/http"

	"canalmesh/internal/l7"
	"canalmesh/internal/telemetry"
)

// Echo leaks request payload straight into a response write.
func Echo(w http.ResponseWriter, req *l7.Request) {
	http.Error(w, req.Path, http.StatusNotFound) // want "tenant payload from l7.Request.Path"
}

// LogKeyed is the correct shape: the entry carries the tenant key, so the
// payload traveling with it is attributable.
func LogKeyed(log *telemetry.AccessLog, req *l7.Request) {
	log.Log(telemetry.AccessEntry{Tenant: req.Tenant, Path: req.Path})
}

// LogUnkeyed drops the key: one tenant's path lands anonymously in the
// shared log.
func LogUnkeyed(log *telemetry.AccessLog, req *l7.Request) {
	log.Log(telemetry.AccessEntry{Path: req.Path}) // want "reaches the shared access log without a tenant key"
}

// Handle leaks through two summary hops: the report lands at the call that
// injects the payload, carrying the chain down to the sink.
func Handle(w http.ResponseWriter, req *l7.Request) {
	emit(w, req.Path) // want "via internal/gateway.emit -> internal/gateway.write"
}

func emit(w http.ResponseWriter, p string) {
	write(w, p)
}

func write(w http.ResponseWriter, p string) {
	http.Error(w, p, http.StatusInternalServerError)
}

// respond is an audited isolation point: w is the requesting tenant's own
// writer, so payload reaching it is not a cross-tenant leak. The boundary
// makes the body exempt and the summary clean.
//
//canal:boundary w is the requesting tenant's own ResponseWriter
func respond(w http.ResponseWriter, msg string) {
	http.Error(w, msg, http.StatusForbidden)
}

// Reject stays quiet: the payload stops at the boundary.
func Reject(w http.ResponseWriter, req *l7.Request) {
	respond(w, req.Path)
}

// ping/pong form a summary SCC: the fixpoint must converge and report the
// leak exactly once at the injection site.
func ping(log *telemetry.AccessLog, p string, n int) {
	if n == 0 {
		log.Log(telemetry.AccessEntry{Path: p})
		return
	}
	pong(log, p, n-1)
}

func pong(log *telemetry.AccessLog, p string, n int) {
	ping(log, p, n)
}

// Recurse injects payload into the recursive pair.
func Recurse(log *telemetry.AccessLog, req *l7.Request) {
	ping(log, req.Path, 3) // want "reaches the shared access log"
}

// LogHeader reads the tenant header — identity, not payload — so the entry
// is keyed and the user-agent payload travels attributably.
func LogHeader(log *telemetry.AccessLog, r *http.Request) {
	tenant := r.Header.Get("X-Canal-Tenant")
	ua := r.Header.Get("User-Agent")
	log.Log(telemetry.AccessEntry{Tenant: tenant, Path: ua})
}

// LogHeaderUnkeyed logs a request header with no tenant key at all.
func LogHeaderUnkeyed(log *telemetry.AccessLog, r *http.Request) {
	ua := r.Header.Get("User-Agent")
	log.Log(telemetry.AccessEntry{Path: ua}) // want "tenant payload from http.Request.Header"
}

// Reviewed carries a justified suppression: the diagnostic is swallowed.
func Reviewed(w http.ResponseWriter, req *l7.Request) {
	//canal:allow tenantflow reviewed: the echo endpoint replays the caller its own path
	http.Error(w, req.Path, http.StatusOK)
}

// Clean has a directive with nothing to suppress: the staleness report
// fires on the directive itself.
func Clean(w http.ResponseWriter) {
	//canal:allow tenantflow nothing here leaks // want "suppresses nothing"
	http.Error(w, "static body", http.StatusOK)
}

// unaudited carries a malformed boundary declaration: no reason.
func unaudited(w http.ResponseWriter, msg string) {
	// want+1 "canal:boundary needs a reason"
	//canal:boundary
	_, _ = w, msg
}
