// Package telemetry poses as the module's access log so (*AccessLog).Log
// resolves to the engine's shared-access-log sink key.
package telemetry

// AccessEntry is one log record; Tenant is the keying field the engine's
// composite-literal rule recognizes.
type AccessEntry struct {
	Tenant string
	Path   string
	Status int
}

// AccessLog collects entries.
type AccessLog struct {
	entries []AccessEntry
}

// Log appends one entry.
func (l *AccessLog) Log(e AccessEntry) {
	l.entries = append(l.entries, e)
}
