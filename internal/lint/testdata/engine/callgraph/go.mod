module cgfix

go 1.23
