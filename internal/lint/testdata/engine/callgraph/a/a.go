// Package a exercises the call-graph builder: interface dispatch resolved
// by class-hierarchy analysis, method values as may-call references,
// direct and mutual recursion, and cross-unit (external-test) edges.
package a

// Ringer is dispatched through CHA: every in-module concrete type with a
// matching Ring method becomes an edge target, including test-only ones.
type Ringer interface{ Ring() int }

// Bell implements Ringer with a value receiver.
type Bell struct{}

// Ring returns a constant.
func (Bell) Ring() int { return 1 }

// Gong implements Ringer with a pointer receiver.
type Gong struct{ N int }

// Ring returns the stored count.
func (g *Gong) Ring() int { return g.N }

// Chime dispatches through the interface.
func Chime(r Ringer) int { return r.Ring() }

// Countdown recurses directly; reachability must terminate on the cycle.
func Countdown(n int) int {
	if n <= 0 {
		return 0
	}
	return Countdown(n-1) + 1
}

// Even and Odd recurse mutually.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

// Odd is Even's partner.
func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Apply invokes a callback. The call through the plain function value stays
// unresolved by design; the interesting edge is the method-value reference
// at Handle's call site.
func Apply(f func() int) int { return f() }

// Handle passes a method value: the reference is a may-call edge to
// (Bell).Ring even though the invocation happens inside Apply.
func Handle(b Bell) int { return Apply(b.Ring) }
