package a_test

import "cgfix/a"

// loudRinger is a test-only implementation: CHA fans out to it, but
// reachability must never walk into a test node.
type loudRinger struct{}

func (loudRinger) Ring() int { return 99 }

// ringAll is a cross-unit caller: an external-test function with call
// edges into the primary unit.
func ringAll() int {
	return a.Chime(loudRinger{}) + a.Handle(a.Bell{})
}

var _ = ringAll
