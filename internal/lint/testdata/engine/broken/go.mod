module broken

go 1.23
