// Package broken fails type-checking on purpose: the engine must degrade
// to reporting the failure and keep whatever partial information it
// gathered, never panic or abort the run.
package broken

func Bad() int {
	return undefinedIdentifier + 1
}

func Good() int { return 4 }
