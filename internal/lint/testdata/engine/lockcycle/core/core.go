// Package core defines the lock classes of a cross-package lock-order
// inversion (the canalmesh analogue: an l7 engine lock and a telemetry
// registry lock acquired in opposite orders from different packages).
package core

import "sync"

// A guards one resource.
type A struct {
	Mu sync.Mutex
	N  int
}

// B guards another.
type B struct {
	Mu sync.Mutex
	N  int
}

// TouchA locks A on its own; callers holding other locks extend the
// acquisition order through this call.
func TouchA(a *A) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	a.N++
}

// C and D form a second inversion whose reverse leg carries a reviewed
// suppression (in package rev).
type C struct{ Mu sync.Mutex }

// D pairs with C.
type D struct{ Mu sync.Mutex }

// CThenD acquires C then D directly.
func CThenD(c *C, d *D) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	d.Mu.Lock() // want "lock-order cycle between core.C.Mu and core.D.Mu"
	d.Mu.Unlock()
}
