// Package rev closes the lock-order cycles from the other side of the
// package boundary: one leg direct, one leg through a call into core.
package rev

import "lockfix/core"

// AThenB acquires A then B directly.
func AThenB(a *core.A, b *core.B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Mu.Lock() // want "lock-order cycle between core.A.Mu and core.B.Mu"
	b.Mu.Unlock()
}

// BThenA acquires B, then A through core.TouchA — the reverse order, one
// call frame down.
func BThenA(a *core.A, b *core.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	core.TouchA(a) // want "lock-order cycle between core.B.Mu and core.A.Mu"
}

// DThenC closes the C/D cycle but carries a reviewed suppression; only the
// core-side leg reports.
func DThenC(c *core.C, d *core.D) {
	d.Mu.Lock()
	defer d.Mu.Unlock()
	//canal:allow lockorder fixture: deliberate inversion kept to prove directive suppression
	c.Mu.Lock()
	c.Mu.Unlock()
}

// Sequential releases E before taking F: hold ranges end at the Unlock, so
// no order edge exists in either direction and no cycle is reported.
func Sequential(e *core.A, f *core.B) {
	e.Mu.Lock()
	e.N++
	e.Mu.Unlock()
	f.Mu.Lock()
	f.N++
	f.Mu.Unlock()
}
