module lockfix

go 1.23
