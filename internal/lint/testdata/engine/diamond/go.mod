module diamond

go 1.23
