package b

import "diamond/d"

func Twice() int { return 2 * d.Base() }
