// Package a is the apex of the diamond import graph a -> {b, c} -> d:
// the engine must type-check d once and hand both b and c the same
// cached *types.Package.
package a

import (
	"diamond/b"
	"diamond/c"
)

// Total exercises both arms so the apex only type-checks if the shared
// base resolved identically through each.
func Total() int { return b.Twice() + c.Thrice() }
