package d

func Base() int { return 7 }
