package c

import "diamond/d"

func Thrice() int { return 3 * d.Base() }
