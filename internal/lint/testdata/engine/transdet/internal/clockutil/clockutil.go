// Package clockutil is an out-of-scope helper: wall-clock and global-rand
// reads are legal here, but sim-scope callers must not reach them.
package clockutil

import (
	"math/rand"
	"time"

	"canalmesh/internal/sim/sub"
)

// Stamp reads the wall clock one more hop down.
func Stamp() int64 { return nanos() }

func nanos() int64 { return time.Now().UnixNano() }

// Roll draws from the global math/rand source directly.
func Roll() int { return rand.Intn(6) }

// Pure is deterministic all the way down.
func Pure() int64 { return 42 }

// Relay re-enters sim scope before any clock read: transdeterminism must
// stop propagating at the boundary (sub's own clock use is simdeterminism's
// jurisdiction).
func Relay() int64 { return sub.Tick() }
