// Package sim is in simdeterminism scope: transdeterminism polices its
// calls into out-of-scope helper packages.
package sim

import "canalmesh/internal/clockutil"

// Step reaches the wall clock through two helper frames.
func Step() int64 {
	return clockutil.Stamp() // want "internal/clockutil.Stamp reaches nondeterminism: time.Now reads or waits on the wall clock"
}

// Draw reaches the global math/rand source one frame down.
func Draw() int {
	return clockutil.Roll() // want "internal/clockutil.Roll reaches nondeterminism: rand.Intn draws from the global math/rand source"
}

// StepAllowed carries a reviewed justification: suppressed, not reported.
func StepAllowed() int64 {
	//canal:allow transdeterminism fixture: wall-clock helper permitted to prove directive suppression
	return clockutil.Stamp()
}

// StepClean calls only the deterministic helper: nothing to report.
func StepClean() int64 { return clockutil.Pure() }

// StepBoundary reaches the clock only by re-entering sim scope through the
// helper: simdeterminism's jurisdiction, so transdeterminism stays quiet.
func StepBoundary() int64 { return clockutil.Relay() }

// StaleStep carries a directive that suppresses nothing.
func StaleStep() int64 {
	// want+1 "canal:allow transdeterminism suppresses nothing"
	//canal:allow transdeterminism fixture: deliberately stale justification
	return clockutil.Pure()
}
