package sim

import "canalmesh/internal/clockutil"

// harnessNow is test-unit code: wall-clock reach is tolerated in harnesses,
// matching the syntactic analyzer's test exemption.
func harnessNow() int64 { return clockutil.Stamp() }

var _ = harnessNow
