// Package sub is sim-scope: its direct clock read belongs to the syntactic
// simdeterminism analyzer, not to transitive propagation.
package sub

import "time"

// Tick reads the clock inside sim scope.
func Tick() int64 { return time.Now().UnixNano() }
