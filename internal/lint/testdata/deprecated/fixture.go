// Package keyserver is the deprecated fixture: uses of identifiers whose
// doc comments carry a Deprecated: paragraph are flagged wherever type
// information resolves them, including methods and package-level values.
package keyserver

// Deprecated: use NewThing.
func OldThing() int { return 1 }

func NewThing() int { return 2 }

// OldLimit is the retired default.
//
// Deprecated: use Limits.Default.
const OldLimit = 10

type Widget struct{}

// Deprecated: use Widget.Run.
func (w Widget) Go() {}

func (w Widget) Run() {}

// Deprecated: use Config.
type LegacyConfig struct{ N int }

// holder's field shares the deprecated const's name; field accesses must
// not be mistaken for the package-level symbol.
type holder struct {
	OldLimit int
}

func use() {
	_ = OldThing() // want "OldThing is deprecated: use NewThing."
	_ = NewThing()
	_ = OldLimit // want "OldLimit is deprecated: use Limits.Default."
	var w Widget
	w.Go() // want "Go is deprecated: use Widget.Run."
	w.Run()
	var c LegacyConfig // want "LegacyConfig is deprecated: use Config."
	_ = c
	h := holder{OldLimit: 3}
	_ = h.OldLimit
}
