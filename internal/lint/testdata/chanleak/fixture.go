// Package bench is the chanleak fixture: goroutines parked forever on
// function-local unbuffered channels.
package bench

import "context"

func leakySend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want "goroutine sends on unbuffered local channel ch"
	}()
}

func leakyRecv() {
	done := make(chan struct{})
	go func() {
		<-done // want "never closed and has no select escape"
	}()
}

func closedRecv() {
	done := make(chan struct{})
	go func() {
		<-done // a close elsewhere in the function unblocks this receive
	}()
	close(done)
}

func selectEscapes(ctx context.Context) {
	res := make(chan int)
	go func() {
		select {
		case res <- 1: // the ctx.Done() case is the escape hatch
		case <-ctx.Done():
		}
	}()
}

func buffered() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1 // a buffered send cannot block
	}()
}

func escapes() {
	ch := make(chan int)
	go produce(ch) // the handshake may complete in produce
	go func() {
		ch <- 2 // escaped channels are another function's contract
	}()
}

func produce(ch chan int) { ch <- 1 }

func leakyRange() {
	ch := make(chan int)
	for v := range ch { // want "never closed; the loop can never terminate"
		_ = v
	}
}

func closedRange() {
	ch := make(chan int)
	close(ch)
	for v := range ch {
		_ = v
	}
}
