package lint

// SharedMut guards package-level mutable state on the request path: a
// write to a package-scope variable from a function reachable from a
// request-path root (a //canal:hotpath function, or one that reads a
// taint source — see dataflow.go) must hold a lock whose hold range (from
// the v3 lock facts) covers the write, or store through an index keyed by
// an identity-tainted tenant value. Anything else is shared mutable state
// that one tenant's request can corrupt for every other tenant — the
// sidecar-free architecture's singular hazard.
//
// Reads are out of scope by design: immutable package-level configuration
// is idiomatic, and the racy-read case is the race detector's job; this
// analyzer proves the isolation discipline statically.
func SharedMut() *Analyzer {
	return &Analyzer{
		Name: "sharedmut",
		Doc:  "report unlocked, un-tenant-keyed writes to package-level state reachable from the request path",
		Run:  runSharedMut,
	}
}

func runSharedMut(p *Package, r *Reporter) {
	for _, d := range taintFor(p).findingsFor("sharedmut") {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}
