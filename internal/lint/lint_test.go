package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectations from fixture sources: a comment of the form
//
//	// want "substr" "substr"
//	// want+1 "substr"        (applies to the following line)
//
// Every diagnostic on a line must match one expectation there, and every
// expectation must be matched — so fixtures prove analyzers both fire and
// stay quiet.
var wantRe = regexp.MustCompile(`// want(\+1)? (".*")$`)

var wantStrRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line    int
	substr  string
	matched bool
}

func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		lineNo := i + 1
		if m[1] == "+1" {
			lineNo++
		}
		for _, q := range wantStrRe.FindAllStringSubmatch(m[2], -1) {
			wants = append(wants, &expectation{line: lineNo, substr: strings.ReplaceAll(q[1], `\"`, `"`)})
		}
	}
	return wants
}

// checkFixture compares diagnostics against the fixture's want comments.
func checkFixture(t *testing.T, fixtureFile string, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, fixtureFile)
	for _, d := range diags {
		text := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && strings.Contains(text, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", fixtureFile, w.line, w.substr)
		}
	}
}

// runFixture loads testdata/<name> posed as module directory poseDir and
// runs the single named analyzer without directive processing.
func runFixture(t *testing.T, name, poseDir, analyzer string) []Diagnostic {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", name), poseDir)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, a := range Analyzers() {
		if a.Name != analyzer {
			continue
		}
		a.Run(pkg, &Reporter{fset: pkg.Fset, analyzer: a.Name, out: &diags})
	}
	return diags
}

func fixtureFile(name string) string {
	return filepath.Join("testdata", name, "fixture.go")
}

func TestSimDeterminismFires(t *testing.T) {
	diags := runFixture(t, "simdeterminism", "internal/sim", "simdeterminism")
	checkFixture(t, fixtureFile("simdeterminism"), diags)
}

func TestSimDeterminismOutOfScope(t *testing.T) {
	// The same violations in a non-simulation package are fine: real
	// servers may read the wall clock.
	for _, dir := range []string{"internal/telemetry", "cmd/canalload", "examples/quickstart", "internal/meshcrypto"} {
		if diags := runFixture(t, "simdeterminism", dir, "simdeterminism"); len(diags) != 0 {
			t.Errorf("dir %q: expected no diagnostics out of scope, got %v", dir, diags)
		}
	}
}

func TestSimDeterminismScope(t *testing.T) {
	for dir, want := range map[string]bool{
		"":                    true,
		"internal/sim":        true,
		"internal/sim/sub":    true,
		"internal/bench":      true,
		"internal/keyserver":  true,
		"internal/telemetry":  false,
		"cmd/canalvet":        false,
		"examples/quickstart": false,
	} {
		if got := inSimScope(dir); got != want {
			t.Errorf("inSimScope(%q) = %v, want %v", dir, got, want)
		}
	}
}

func TestMapOrder(t *testing.T) {
	diags := runFixture(t, "maporder", "internal/anomaly", "maporder")
	checkFixture(t, fixtureFile("maporder"), diags)
}

func TestAtomicMix(t *testing.T) {
	diags := runFixture(t, "atomicmix", "internal/telemetry", "atomicmix")
	checkFixture(t, fixtureFile("atomicmix"), diags)
}

func TestLockSafe(t *testing.T) {
	diags := runFixture(t, "locksafe", "internal/overlay", "locksafe")
	checkFixture(t, fixtureFile("locksafe"), diags)
}

func TestErrDrop(t *testing.T) {
	diags := runFixture(t, "errdrop", "internal/keyserver", "errdrop")
	checkFixture(t, fixtureFile("errdrop"), diags)
}

// TestErrDropSkipsTests proves errdrop ignores _test.go files: the same
// fixture source parsed as a test file yields nothing.
func TestErrDropSkipsTests(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "errdrop"), "internal/keyserver")
	if err != nil {
		t.Fatal(err)
	}
	for i := range pkg.Files {
		pkg.Files[i].Test = true
	}
	var diags []Diagnostic
	ErrDrop().Run(pkg, &Reporter{fset: pkg.Fset, analyzer: "errdrop", out: &diags})
	if len(diags) != 0 {
		t.Errorf("expected no diagnostics in test files, got %v", diags)
	}
}

// runTypedFixture is runFixture for the type-aware analyzers: the fixture
// is type-checked first (and must type-check cleanly — a fixture with type
// errors would silently test nothing, since typed analyzers degrade to
// silence on partial information).
func runTypedFixture(t *testing.T, name, poseDir, analyzer string) []Diagnostic {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", name), poseDir)
	if err != nil {
		t.Fatal(err)
	}
	TypeCheck([]*Package{pkg})
	for _, d := range pkg.TypeErrors {
		t.Fatalf("fixture %s must type-check: %s", name, d)
	}
	var diags []Diagnostic
	for _, a := range Analyzers() {
		if a.Name != analyzer {
			continue
		}
		a.Run(pkg, &Reporter{fset: pkg.Fset, analyzer: a.Name, out: &diags})
	}
	return diags
}

func TestUnitSafe(t *testing.T) {
	diags := runTypedFixture(t, "unitsafe", "internal/sim", "unitsafe")
	checkFixture(t, fixtureFile("unitsafe"), diags)
}

func TestCtxFlow(t *testing.T) {
	diags := runTypedFixture(t, "ctxflow", "internal/gateway", "ctxflow")
	checkFixture(t, fixtureFile("ctxflow"), diags)
}

func TestDeprecated(t *testing.T) {
	diags := runTypedFixture(t, "deprecated", "internal/keyserver", "deprecated")
	checkFixture(t, fixtureFile("deprecated"), diags)
}

func TestChanLeak(t *testing.T) {
	diags := runTypedFixture(t, "chanleak", "internal/bench", "chanleak")
	checkFixture(t, fixtureFile("chanleak"), diags)
}

// TestDirectivePipeline runs the full suite (analyzers + directive
// processing) over the directive fixture.
func TestDirectivePipeline(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "directive"), "internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, Analyzers())
	checkFixture(t, fixtureFile("directive"), diags)
	// The stale-directive report must carry the rotting reason text, the
	// Stale marker (so only -stale-as-error counts it), and a deletion fix.
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "suppresses nothing") {
			continue
		}
		found = true
		if !d.Stale {
			t.Error("stale directive diagnostic not marked Stale")
		}
		if !strings.Contains(d.Message, "stale reason:") {
			t.Errorf("stale report lacks the reason text: %s", d.Message)
		}
		if d.Fix == nil || len(d.Fix.Edits) != 1 || d.Fix.Edits[0].NewText != "" {
			t.Errorf("stale report lacks a deletion fix: %+v", d.Fix)
		}
	}
	if !found {
		t.Error("directive fixture produced no stale-directive report")
	}
}

// selfHostDirectives pins the module's //canal:allow count: every new
// suppression is a conscious, reviewed decision, and deleting code must
// also delete its directives (stale ones already fail -stale-as-error).
const selfHostDirectives = 79

// selfHostBoundaries pins the module's //canal:boundary count the same way:
// each one declares an audited isolation point the taint engine trusts, so
// adding one is a reviewed security decision (currently just
// GatewayServer.fail, which writes only the requesting tenant's own
// ResponseWriter).
const selfHostBoundaries = 1

// TestSelfHost runs the full suite over this repository: the codebase must
// stay canalvet-clean, with every intentional violation carrying a justified
// //canal:allow. This is the regression gate for the typed engine too — all
// fifteen analyzers run with full type information over every package, any
// type-check failure surfaces here as a "typecheck" diagnostic, the
// interprocedural three see the module-wide call graph, and the taint trio
// sees the dataflow engine built on top of it.
func TestSelfHost(t *testing.T) {
	if n := len(Analyzers()); n != 15 {
		t.Fatalf("suite has %d analyzers, want 15 (5 syntactic + 4 type-aware + 3 interprocedural + 3 taint)", n)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, _, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost the module", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Module != "canalmesh" {
			t.Fatalf("package %q loaded under module %q", p.Dir, p.Module)
		}
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
	for _, p := range pkgs {
		if p.TypesInfo == nil || p.TypesPkg == nil {
			t.Errorf("package %q missing type information after Run", p.Dir)
		}
	}
	total := 0
	boundaries := 0
	for _, p := range pkgs {
		dirs, _ := ParseDirectives(p)
		total += len(dirs)
		boundaries += CountBoundaries(p)
	}
	if total != selfHostDirectives {
		t.Errorf("module carries %d //canal:allow directives, want exactly %d; update selfHostDirectives only for a reviewed suppression", total, selfHostDirectives)
	}
	if boundaries != selfHostBoundaries {
		t.Errorf("module carries %d //canal:boundary declarations, want exactly %d; update selfHostBoundaries only for a reviewed isolation audit", boundaries, selfHostBoundaries)
	}
}
