package lint

import (
	"go/ast"
	"go/token"
)

// CtxFlow enforces context threading. The parallel bench runner (DESIGN
// §8) abandons experiments on timeout and relies on cancellation reaching
// every Run(ctx) path; a context.Background() minted mid-call-chain
// quietly detaches everything below it from that cancellation. The rule:
// non-main, non-test code never creates a root context. A function that
// received (or closes over) a ctx threads it; a function that needs one
// and has none accepts it from its caller.
//
// When an in-scope ctx exists, the diagnostic carries a fix replacing the
// context.Background()/TODO() call with the parameter (and dropping the
// "context" import if that call was its last use in the file).
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "forbid fresh root contexts in non-main code; thread the received ctx (type-aware)",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Package, r *Reporter) {
	if p.TypesInfo == nil || p.baseName() == "main" {
		return
	}
	for _, sf := range p.Files {
		if sf.Test {
			continue
		}
		ctxName, ok := importName(sf.AST, "context")
		if !ok {
			continue
		}
		refs := contextRefs(sf.AST, ctxName)
		walkWithStack(sf.AST, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := ""
			if isPkgCall(call, ctxName, "Background") {
				fn = "Background"
			} else if isPkgCall(call, ctxName, "TODO") {
				fn = "TODO"
			}
			if fn == "" {
				return true
			}
			if param := enclosingCtxParam(p, stack); param != "" {
				fix := Fix{
					Message: "thread the in-scope context",
					Edits:   []Edit{{Pos: call.Pos(), End: call.End(), NewText: param}},
				}
				if refs == 1 {
					if e, ok := importDeletionEdit(sf.AST, "context"); ok {
						fix.Edits = append(fix.Edits, e)
					}
				}
				r.ReportFix(call.Pos(), fix,
					"context.%s() discards the in-scope context; thread %s so cancellation reaches this call path", fn, param)
			} else {
				r.Reportf(call.Pos(),
					"context.%s() mints a root context in non-main, non-test code; accept a context.Context from the caller and thread it", fn)
			}
			return true
		})
	}
}

// enclosingCtxParam walks outward over the enclosing functions (literals
// capture lexically, so any level counts) and returns the name of the
// nearest context.Context parameter, or "".
func enclosingCtxParam(p *Package, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch v := stack[i].(type) {
		case *ast.FuncDecl:
			ft = v.Type
		case *ast.FuncLit:
			ft = v.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if !namedType(p.typeOf(field.Type), "context", "Context") {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}

// contextRefs counts qualified references through the file's "context"
// import, so the fix knows whether removing one call orphans the import.
func contextRefs(f *ast.File, ctxName string) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxName {
			n++
		}
		return true
	})
	return n
}

// importDeletionEdit builds an edit removing the named import from the
// file: the whole declaration when it is the only import, otherwise just
// the spec (gofmt reclaims the leftover line).
func importDeletionEdit(f *ast.File, path string) (Edit, bool) {
	var spec *ast.ImportSpec
	var owner *ast.GenDecl
	total := 0
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, s := range gd.Specs {
			is := s.(*ast.ImportSpec)
			total++
			if is.Path.Value == `"`+path+`"` {
				spec, owner = is, gd
			}
		}
	}
	if spec == nil {
		return Edit{}, false
	}
	if total == 1 {
		return Edit{Pos: owner.Pos(), End: owner.End()}, true
	}
	return Edit{Pos: spec.Pos(), End: spec.End()}, true
}
