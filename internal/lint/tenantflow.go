package lint

// TenantFlow reports cross-tenant data leaks found by the dataflow engine
// (dataflow.go): a value carrying tenant payload taint — request paths,
// headers, bodies, error text derived from them — reaching a sink
// (response write, the shared access log, package-level state) with no
// identity taint traveling alongside to key it to the owning tenant.
// Findings cross function boundaries through bottom-up summaries and are
// reported with the propagation chain, hotpath-style:
//
//	tenant payload from l7.Request.Path (request.go:12) reaches
//	http.Error response write without a tenant key (via Serve -> fail)
//
// Audited sites are declared with //canal:boundary <reason> on the
// function (its body is exempt and taint stops there) or suppressed per
// line with //canal:allow tenantflow <reason>.
func TenantFlow() *Analyzer {
	return &Analyzer{
		Name: "tenantflow",
		Doc:  "report tenant-tainted values reaching response/log/state sinks without the tenant key (interprocedural taint)",
		Run:  runTenantFlow,
	}
}

func runTenantFlow(p *Package, r *Reporter) {
	for _, d := range taintFor(p).findingsFor("tenantflow") {
		if ownsFile(p, d.Pos.Filename) {
			r.report(d)
		}
	}
}
