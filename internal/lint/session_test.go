package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// copyTaintModule clones the taint fixture module into a temp dir so the
// session tests can mutate sources without touching testdata.
func copyTaintModule(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "engine", "taint")
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestSessionReuse pins the cache contract: an unchanged tree is reused,
// any source edit forces a full reload, and the reloaded packages are
// fresh objects (not the stale type-check units).
func TestSessionReuse(t *testing.T) {
	root := copyTaintModule(t)
	s := NewSession(root)

	first, reused, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first load reported reused=true")
	}
	if len(first) == 0 || first[0].TypesInfo == nil {
		t.Fatal("session load did not type-check the module")
	}

	second, reused, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("unchanged tree was not reused")
	}
	if len(second) != len(first) || second[0] != first[0] {
		t.Fatal("reused load returned different package objects")
	}

	// Edit one file: the whole module must reload.
	target := filepath.Join(root, "internal", "l7", "request.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	third, reused, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("edited tree was reported reused")
	}
	if len(third) > 0 && third[0] == first[0] {
		t.Fatal("reload after an edit returned the stale package objects")
	}
}

// TestSessionDirHashes pins the per-directory key granularity: editing one
// file changes exactly that directory's digest.
func TestSessionDirHashes(t *testing.T) {
	root := copyTaintModule(t)
	s := NewSession(root)
	before, err := s.dirHashes()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 4 {
		t.Fatalf("expected hashes for the fixture's directories, got %d: %v", len(before), before)
	}

	target := filepath.Join(root, "internal", "state", "state.go")
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := s.dirHashes()
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for dir, h := range after {
		if before[dir] != h {
			changed++
			if dir != "internal/state" {
				t.Errorf("unexpected directory digest change: %s", dir)
			}
		}
	}
	if changed != 1 {
		t.Errorf("edit changed %d directory digests, want exactly 1", changed)
	}
}
