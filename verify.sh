#!/bin/sh
# Repo-wide verification: build, formatting, vet, the canalvet invariant
# linters (sim determinism, map-order hygiene, atomic/lock discipline, error
# hygiene, the type-aware unit-safety, context-flow, deprecation and
# channel-leak analyzers, the call-graph-driven hotpath, lockorder and
# transdeterminism analyzers, plus the taint-driven tenantflow, sharedmut
# and poolbleed analyzers — see internal/lint), and the full test suite
# under the race detector. This is the gate every PR must pass, and CI runs
# exactly the same steps (.github/workflows/ci.yml).
set -eu
cd "$(dirname "$0")"

go build ./...

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...

# Diagnostic order is a byte-stable invariant (the call-graph and dataflow
# engines walk everything in sorted order): -runs 2 analyzes the module
# twice in one process — the second run reuses the session cache's
# type-checked packages but rebuilds the call graph and taint engine from
# scratch — and both the in-process comparison and the external cmp must
# find the runs identical. This single invocation also serves as the
# -stale-as-error findings gate.
go run ./cmd/canalvet -stale-as-error -runs 2 -json /tmp/canalvet-run1.json ./...
cmp /tmp/canalvet-run1.json /tmp/canalvet-run1.json.run2

go test -race ./...

# The hot-path allocation gate skips itself under -race (instrumentation
# changes allocation counts), so it gets a dedicated non-race invocation
# against the checked-in BENCH_hotpath.json baseline.
go test -run TestHotPathAllocs ./internal/bench

# Smoke the tracing pipeline end to end: the per-hop breakdown tables must
# render and the JSON report must export.
go run ./cmd/canalsim trace -arch canal -arch istio -requests 50 -json /tmp/canal-trace-breakdown.json >/dev/null
test -s /tmp/canal-trace-breakdown.json

# Smoke the config-churn scenario end to end at a reduced scale: the
# delta-vs-full comparison table must render and the JSON report must
# export with all six (architecture, mode) rows.
go run ./cmd/canalsim config-churn -nodes 60 -services 10 -pods 6 -rolling 3 -window 30s \
    -json /tmp/canal-configpush.json >/dev/null
test -s /tmp/canal-configpush.json

# Smoke the policy-scale sweep end to end at a reduced scale: the dispatch
# table must render with stable fingerprints and the JSON report must
# export with the churn section.
go run ./cmd/canalsim policy-scale -max-rules 10000 -json /tmp/canal-policy.json >/dev/null
test -s /tmp/canal-policy.json

# Smoke the multi-region federation experiments end to end at a reduced
# scale: the evacuation and split-brain tables must render and the JSON
# report must export with both sections.
go run ./cmd/canalsim federation -regions 2 -backends 3 \
    -json /tmp/canal-federation.json >/dev/null
test -s /tmp/canal-federation.json

# Parallel-vs-serial equivalence smoke: the benchmark runner must emit
# byte-identical stdout regardless of the parallelism level (timing and
# diagnostics go to stderr), and the timing report must export. A fast
# experiment subset keeps the gate quick; TestParallelMatchesSerial covers
# the full set.
go build -o /tmp/canalbench ./cmd/canalbench
/tmp/canalbench -parallel 1 -ablations fig2 fig15 table5 abl-shard >/tmp/canalbench-serial.txt 2>/dev/null
/tmp/canalbench -parallel 8 -ablations -json /tmp/canalbench-timings.json fig2 fig15 table5 abl-shard >/tmp/canalbench-parallel.txt 2>/dev/null
cmp /tmp/canalbench-serial.txt /tmp/canalbench-parallel.txt
test -s /tmp/canalbench-timings.json
