package canal

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/trace"
)

func TestGatewayTraceparentRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var upstreamTP string
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		upstreamTP = r.Header.Get(trace.TraceparentHeader)
		mu.Unlock()
	}))
	defer upstream.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {upstream.URL}}, false)

	// Caller-supplied context: the gateway must join it, not mint a new one.
	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	resp, err := agent.Do("GET", "web", "/hello", nil, map[string]string{trace.TraceparentHeader: parent})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	mu.Lock()
	got := upstreamTP
	mu.Unlock()
	id, span, sampled, err := trace.ParseTraceparent(got)
	if err != nil {
		t.Fatalf("upstream traceparent %q: %v", got, err)
	}
	if id.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace ID not propagated: got %s", id)
	}
	if span.String() == "b7ad6b7169203331" {
		t.Error("gateway must substitute its own span ID as the upstream parent")
	}
	if !sampled {
		t.Error("sampled flag lost in propagation")
	}

	// The joined trace is retained (sampled) with the upstream hop recorded.
	kept := gw.Tracer().Kept()
	if len(kept) != 1 {
		t.Fatalf("kept traces = %d, want 1", len(kept))
	}
	tr := kept[0]
	if tr.ID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("kept trace ID = %s", tr.ID)
	}
	if tr.Status != 200 {
		t.Errorf("kept trace status = %d", tr.Status)
	}
	hops := tr.Hops()
	if len(hops) != 1 || hops[0].Name != "gateway/upstream" {
		t.Fatalf("hops = %+v, want one gateway/upstream span", hops)
	}
	if hops[0].End < hops[0].Start || tr.Total() <= 0 {
		t.Error("hop/root spans must have non-negative durations")
	}

	// The access log line joins back to the trace.
	entries := gw.AccessLog().FindTrace(tr.ID.String())
	if len(entries) != 1 || entries[0].Status != 200 {
		t.Fatalf("access-log join = %+v", entries)
	}
}

func TestNodeAgentOriginatesTraceparent(t *testing.T) {
	upstream := echoServer("v1")
	defer upstream.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {upstream.URL}}, false)
	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if agent.Tracer == nil {
		t.Fatal("NewNodeAgent should wire a live tracer")
	}
	akept := agent.Tracer.Kept()
	if len(akept) != 1 || akept[0].Status != 200 {
		t.Fatalf("agent kept = %+v", akept)
	}
	gkept := gw.Tracer().Kept()
	if len(gkept) != 1 {
		t.Fatalf("gateway kept = %d traces", len(gkept))
	}
	if gkept[0].ID != akept[0].ID {
		t.Errorf("gateway trace %s != agent trace %s: context not joined", gkept[0].ID, akept[0].ID)
	}
	if gkept[0].Root().Parent != akept[0].Root().ID {
		t.Error("gateway root span should be parented on the agent's root span")
	}
}

func TestGatewayShedAndUpstreamErrorsCarryTraceHeader(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond) //canal:allow simdeterminism real upstream delay creates the live concurrency the limiter sheds
	}))
	defer slow.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {slow.URL}}, false)
	gw.EnableAdmission(admission.Config{
		Limiter: admission.LimiterConfig{InitialLimit: 1, MinLimit: 1, MaxLimit: 1},
	})

	var mu sync.Mutex
	shedHeaders := map[string]string{} // trace header -> body, for shed responses
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := agent.Get("web", "/")
			if err != nil {
				t.Error(err)
				return
			}
			body := readBody(t, resp)
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				shedHeaders[resp.Header.Get(HeaderTrace)] = body
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(shedHeaders) == 0 {
		t.Fatal("expected at least one shed 429 with concurrency 4 against limit 1")
	}
	for h := range shedHeaders {
		if len(h) != 32 {
			t.Errorf("429 %s header = %q, want 32-hex trace ID", HeaderTrace, h)
		}
		// Every shed request's trace is retained and joinable.
		found := false
		for _, tr := range gw.Tracer().Kept() {
			if tr.ID.String() == h && tr.Status == http.StatusTooManyRequests {
				found = true
			}
		}
		if !found {
			t.Errorf("shed trace %s not in kept set", h)
		}
	}

	// Upstream transport failure: 502 must carry the trace header too.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	_, agent2, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {deadURL}}, false)
	resp, err := agent2.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if h := resp.Header.Get(HeaderTrace); len(h) != 32 {
		t.Errorf("502 %s header = %q, want 32-hex trace ID", HeaderTrace, h)
	}
}

func TestGatewayRecordsUpstreamStatus(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {failing.URL}}, false)

	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	// Upstream 5xx responses carry the trace ID so failures are joinable.
	h := resp.Header.Get(HeaderTrace)
	if len(h) != 32 {
		t.Fatalf("upstream 500 %s header = %q, want 32-hex trace ID", HeaderTrace, h)
	}
	// The trace and the access log both see the upstream's real status,
	// not a blanket 200.
	kept := gw.Tracer().Kept()
	if len(kept) != 1 || kept[0].Status != http.StatusInternalServerError {
		t.Fatalf("kept = %+v, want one trace with status 500", kept)
	}
	if kept[0].ID.String() != h {
		t.Errorf("response trace header %s != kept trace %s", h, kept[0].ID)
	}
	entries := gw.AccessLog().FindTrace(h)
	if len(entries) != 1 || entries[0].Status != http.StatusInternalServerError {
		t.Fatalf("access-log join = %+v, want one entry with status 500", entries)
	}
}

func TestGatewayMirrorForwardsBodyAndHeaders(t *testing.T) {
	type seen struct {
		method, path, subset, custom, body string
	}
	ch := make(chan seen, 1)
	shadow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		ch <- seen{r.Method, r.URL.Path, r.Header.Get(HeaderSubset), r.Header.Get("X-Custom"), string(b)}
	}))
	defer shadow.Close()
	primary := echoServer("v1")
	defer primary.Close()

	cfg := ServiceConfig{Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{Name: "mirror", MirrorTo: "shadow"}}}
	_, agent, gw := testMesh(t, cfg,
		map[string][]string{"v1": {primary.URL}, "shadow": {shadow.URL}}, false)

	resp, err := agent.Do("POST", "web", "/orders", bytes.NewReader([]byte("payload-123")),
		map[string]string{"X-Custom": "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if got := readBody(t, resp); !strings.HasPrefix(got, "v1|/orders") {
		t.Errorf("primary response = %q: body must reach the primary intact after mirror buffering", got)
	}

	select {
	case s := <-ch:
		if s.method != "POST" || s.path != "/orders" {
			t.Errorf("mirror got %s %s", s.method, s.path)
		}
		if s.subset != "shadow" {
			t.Errorf("mirror subset header = %q, want shadow", s.subset)
		}
		if s.custom != "abc" {
			t.Errorf("mirror custom header = %q: headers must be forwarded", s.custom)
		}
		if s.body != "payload-123" {
			t.Errorf("mirror body = %q: body must be forwarded", s.body)
		}
	case <-time.After(3 * time.Second): //canal:allow simdeterminism real-time wait for the async live mirror goroutine
		t.Fatal("mirror request never arrived")
	}
	if n := gw.MirrorFailures(); n != 0 {
		t.Errorf("mirror failures = %v, want 0", n)
	}
}

func TestGatewayMirrorFailureCountedNotSurfaced(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	primary := echoServer("v1")
	defer primary.Close()

	cfg := ServiceConfig{Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{Name: "mirror", MirrorTo: "shadow"}}}
	_, agent, gw := testMesh(t, cfg,
		map[string][]string{"v1": {primary.URL}, "shadow": {deadURL}}, false)
	gw.SetMirrorTimeout(500 * time.Millisecond)

	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("primary status = %d: mirror failure must not surface", resp.StatusCode)
	}
	deadline := time.Now().Add(3 * time.Second)                   //canal:allow simdeterminism real-time deadline polling the async live mirror failure counter
	for gw.MirrorFailures() == 0 && time.Now().Before(deadline) { //canal:allow simdeterminism real-time deadline polling the async live mirror failure counter
		time.Sleep(10 * time.Millisecond) //canal:allow simdeterminism real-time deadline polling the async live mirror failure counter
	}
	if n := gw.MirrorFailures(); n != 1 {
		t.Errorf("mirror failures = %v, want 1", n)
	}
}
