package canal

import "testing"

func TestSampleConfigFileParses(t *testing.T) {
	cfg, err := LoadConfigFile("testdata/gateway.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(cfg.Tenants))
	}
	for _, tn := range cfg.Tenants {
		for _, s := range tn.Services {
			if _, _, err := s.Build(); err != nil {
				t.Errorf("%s/%s: %v", tn.Name, s.Name, err)
			}
		}
	}
}
