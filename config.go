package canal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/sim"
)

// FileConfig is the JSON deployment configuration cmd/canalgw loads: the
// tenants the gateway serves, each with its services, routing rules, and
// upstream pools, plus optional gateway-wide admission control. See
// testdata/gateway.json for a complete example.
type FileConfig struct {
	Tenants   []TenantConfig       `json:"tenants"`
	Admission *AdmissionFileConfig `json:"admission,omitempty"`
}

// AdmissionFileConfig is the JSON form of the gateway's proactive
// overload-control layer (internal/admission). All numeric fields are
// optional; zeros take the package defaults.
type AdmissionFileConfig struct {
	Enabled bool `json:"enabled"`
	// TargetMS / IntervalMS tune CoDel-style queue management.
	TargetMS   float64 `json:"target_ms,omitempty"`
	IntervalMS float64 `json:"interval_ms,omitempty"`
	// Weights biases per-tenant fair shares (default weight 1).
	Weights map[string]float64 `json:"weights,omitempty"`
	// Limiter bounds for the adaptive AIMD concurrency limit.
	InitialLimit int     `json:"initial_limit,omitempty"`
	MinLimit     int     `json:"min_limit,omitempty"`
	MaxLimit     int     `json:"max_limit,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
	// RetryBudgetRatio is the allowed ratio of retries to successes.
	RetryBudgetRatio float64 `json:"retry_budget_ratio,omitempty"`
	// RetryAfterMS is the hint returned with 429 rejections.
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
}

// Build converts the file entry into an admission.Config.
func (a *AdmissionFileConfig) Build() admission.Config {
	return admission.Config{
		Target:   sim.Scale(time.Millisecond, a.TargetMS),
		Interval: sim.Scale(time.Millisecond, a.IntervalMS),
		Weights:  a.Weights,
		Limiter: admission.LimiterConfig{
			InitialLimit: a.InitialLimit,
			MinLimit:     a.MinLimit,
			MaxLimit:     a.MaxLimit,
			Tolerance:    a.Tolerance,
		},
		RetryBudgetRatio: a.RetryBudgetRatio,
		RetryAfter:       sim.Scale(time.Millisecond, a.RetryAfterMS),
	}
}

// TenantConfig declares one tenant and its services.
type TenantConfig struct {
	Name     string             `json:"name"`
	Services []ServiceFileEntry `json:"services"`
}

// ServiceFileEntry declares one service: routing configuration plus the
// upstream pool per subset.
type ServiceFileEntry struct {
	Name          string              `json:"name"`
	DefaultSubset string              `json:"default_subset"`
	Rules         []RuleFileEntry     `json:"rules,omitempty"`
	Authz         []AuthzFileEntry    `json:"authz,omitempty"`
	RateLimitRPS  float64             `json:"rate_limit_rps,omitempty"`
	Pools         map[string][]string `json:"pools"`
}

// RuleFileEntry is the JSON form of one route rule. Matches are expressed
// as "kind:value" strings: "exact:/checkout", "prefix:/api", "regex:^/v[0-9]+",
// "present:" or "any:".
type RuleFileEntry struct {
	Name         string            `json:"name"`
	PathMatch    string            `json:"path,omitempty"`
	MethodMatch  string            `json:"method,omitempty"`
	HeaderMatch  map[string]string `json:"headers,omitempty"`
	CookieMatch  map[string]string `json:"cookies,omitempty"`
	Splits       map[string]int    `json:"splits,omitempty"`
	PathRewrite  string            `json:"path_rewrite,omitempty"`
	RateLimitRPS float64           `json:"rate_limit_rps,omitempty"`
	MirrorTo     string            `json:"mirror_to,omitempty"`
	TimeoutMS    int               `json:"timeout_ms,omitempty"`
	AbortPercent float64           `json:"abort_percent,omitempty"`
	AbortStatus  int               `json:"abort_status,omitempty"`
}

// AuthzFileEntry is the JSON form of one authorization rule.
type AuthzFileEntry struct {
	Name   string `json:"name"`
	Action string `json:"action"` // "allow" or "deny"
	Source string `json:"source,omitempty"`
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
}

// LoadConfig reads a FileConfig from JSON.
func LoadConfig(r io.Reader) (*FileConfig, error) {
	var cfg FileConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("canal: parsing config: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("canal: config declares no tenants")
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("canal: tenant with empty name")
		}
		for _, s := range t.Services {
			if s.Name == "" {
				return nil, fmt.Errorf("canal: tenant %s: service with empty name", t.Name)
			}
			if s.DefaultSubset == "" {
				return nil, fmt.Errorf("canal: service %s/%s: default_subset required", t.Name, s.Name)
			}
			if len(s.Pools) == 0 {
				return nil, fmt.Errorf("canal: service %s/%s: pools required", t.Name, s.Name)
			}
		}
	}
	return &cfg, nil
}

// LoadConfigFile reads a FileConfig from a path.
func LoadConfigFile(path string) (*FileConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadConfig(f)
}

// parseMatch turns a "kind:value" string into a StringMatch. An empty
// string matches anything.
func parseMatch(s string) (StringMatch, error) {
	if s == "" {
		return Any(), nil
	}
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		kind, value := s[:i], s[i+1:]
		switch kind {
		case "exact":
			return Exact(value), nil
		case "prefix":
			return Prefix(value), nil
		case "regex":
			return Regex(value), nil
		case "present":
			return Present(), nil
		case "any":
			return Any(), nil
		default:
			return StringMatch{}, fmt.Errorf("canal: unknown match kind %q", kind)
		}
	}
	// Bare strings are exact matches, the common case.
	return Exact(s), nil
}

// sortedKeys returns a config map's keys in sorted order. Rule lists built
// from JSON maps must not inherit Go's randomized map iteration order, or
// two loads of the same file produce differently-ordered matchers and
// splits.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Build converts a service file entry into engine configuration.
func (s ServiceFileEntry) Build() (ServiceConfig, map[string][]string, error) {
	cfg := ServiceConfig{Service: s.Name, DefaultSubset: s.DefaultSubset}
	if s.RateLimitRPS > 0 {
		cfg.ServiceRateLimit = &RateLimitSpec{RPS: s.RateLimitRPS, Burst: s.RateLimitRPS}
	}
	for _, re := range s.Rules {
		rule := Rule{Name: re.Name, PathRewrite: re.PathRewrite, MirrorTo: re.MirrorTo}
		var err error
		if rule.Match.Path, err = parseMatch(re.PathMatch); err != nil {
			return cfg, nil, fmt.Errorf("rule %s: %w", re.Name, err)
		}
		if rule.Match.Method, err = parseMatch(re.MethodMatch); err != nil {
			return cfg, nil, fmt.Errorf("rule %s: %w", re.Name, err)
		}
		// Header/cookie matchers and traffic splits come from JSON maps;
		// iterate their keys sorted so the built rule — and therefore split
		// selection and match evaluation order — is identical on every load.
		for _, name := range sortedKeys(re.HeaderMatch) {
			sm, err := parseMatch(re.HeaderMatch[name])
			if err != nil {
				return cfg, nil, fmt.Errorf("rule %s header %s: %w", re.Name, name, err)
			}
			rule.Match.Headers = append(rule.Match.Headers, KVMatch{Name: name, Match: sm})
		}
		for _, name := range sortedKeys(re.CookieMatch) {
			sm, err := parseMatch(re.CookieMatch[name])
			if err != nil {
				return cfg, nil, fmt.Errorf("rule %s cookie %s: %w", re.Name, name, err)
			}
			rule.Match.Cookies = append(rule.Match.Cookies, KVMatch{Name: name, Match: sm})
		}
		for _, subset := range sortedKeys(re.Splits) {
			rule.Splits = append(rule.Splits, Split{Subset: subset, Weight: re.Splits[subset]})
		}
		if re.RateLimitRPS > 0 {
			rule.RateLimit = &RateLimitSpec{RPS: re.RateLimitRPS, Burst: re.RateLimitRPS}
		}
		if re.TimeoutMS > 0 {
			rule.Timeout = time.Duration(re.TimeoutMS) * time.Millisecond
		}
		if re.AbortPercent > 0 {
			rule.Fault = &FaultSpec{AbortPercent: re.AbortPercent, AbortStatus: re.AbortStatus}
		}
		cfg.Rules = append(cfg.Rules, rule)
	}
	for _, ae := range s.Authz {
		rule := AuthzRule{Name: ae.Name}
		switch ae.Action {
		case "allow":
			rule.Action = AuthzAllow
		case "deny":
			rule.Action = AuthzDeny
		default:
			return cfg, nil, fmt.Errorf("authz %s: action must be allow or deny, got %q", ae.Name, ae.Action)
		}
		var err error
		if rule.SourceService, err = parseMatch(ae.Source); err != nil {
			return cfg, nil, err
		}
		if rule.Method, err = parseMatch(ae.Method); err != nil {
			return cfg, nil, err
		}
		if rule.Path, err = parseMatch(ae.Path); err != nil {
			return cfg, nil, err
		}
		cfg.Authz = append(cfg.Authz, rule)
	}
	return cfg, s.Pools, nil
}

// Apply provisions a gateway from the file configuration: one CA per tenant
// (returned so operators can issue workload identities), every service's
// routing + pools, and the admission layer when the config enables it.
func (c *FileConfig) Apply(gw *GatewayServer) (map[string]*CA, error) {
	if c.Admission != nil && c.Admission.Enabled {
		gw.EnableAdmission(c.Admission.Build())
	}
	cas := make(map[string]*CA, len(c.Tenants))
	for _, t := range c.Tenants {
		ca, err := NewCA(t.Name + "-ca")
		if err != nil {
			return nil, err
		}
		gw.RegisterTenant(t.Name, ca)
		cas[t.Name] = ca
		for _, s := range t.Services {
			cfg, pools, err := s.Build()
			if err != nil {
				return nil, fmt.Errorf("canal: service %s/%s: %w", t.Name, s.Name, err)
			}
			if err := gw.ConfigureService(t.Name, cfg, pools); err != nil {
				return nil, err
			}
		}
	}
	return cas, nil
}
