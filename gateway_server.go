package canal

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/l7"
	"canalmesh/internal/telemetry"
	"canalmesh/internal/trace"
)

// Identity/auth headers of the real-mode data plane. The NodeAgent signs
// each request with the workload's mesh identity; the gateway verifies the
// signature against the tenant's CA — per-request zero-trust authentication
// without trusting the network in between.
const (
	HeaderTenant    = "X-Canal-Tenant"
	HeaderService   = "X-Canal-Service"
	HeaderSource    = "X-Canal-Source"
	HeaderSourcePod = "X-Canal-Source-Pod"
	HeaderCert      = "X-Canal-Cert"
	HeaderSignature = "X-Canal-Signature"
	HeaderTimestamp = "X-Canal-Timestamp"
	HeaderSubset    = "X-Canal-Subset" // set by the gateway toward upstreams
	// HeaderRetry marks a request as a retry; the admission layer charges
	// it against the tenant's retry budget.
	HeaderRetry = "X-Canal-Retry"
	// HeaderTrace carries the request's trace ID on gateway-generated error
	// responses, so shed (429) and failed (5xx) requests are debuggable by
	// joining the ID against the access log and the trace store.
	HeaderTrace = "X-Canal-Trace"
)

// liveAccessLogCap bounds the live gateway's in-memory access log; the
// simulated experiments keep their logs unbounded, but a long-lived HTTP
// process must not grow without limit under load.
const liveAccessLogCap = 65536

// defaultMirrorTimeout bounds each mirrored shadow request.
const defaultMirrorTimeout = 5 * time.Second

// mirrorBodyLimit is the largest request body the gateway buffers for
// mirroring; larger bodies are mirrored without a body rather than stalling
// (or truncating) the primary request path.
const mirrorBodyLimit = 1 << 20

// authSkew is the accepted clock skew for signed requests.
const authSkew = 2 * time.Minute

// GatewayServer is the real-TCP centralized mesh gateway: one process
// serving many tenants, routing on the shared L7 engine and reverse-proxying
// to registered upstream pools.
type GatewayServer struct {
	mu        sync.RWMutex
	engine    *l7.Engine
	cas       map[string]*CA                   // tenant -> trust domain
	upstreams map[string]map[string][]*url.URL // engine service key -> subset -> URLs
	rr        map[string]int                   // round-robin cursors
	start     time.Time
	log       *telemetry.AccessLog
	admit     *admission.HTTPController
	tracer    *trace.Tracer
	// mirrorClient sends shadow traffic with its own bounded deadline, so a
	// slow mirror subset can never pile up goroutines indefinitely.
	mirrorClient *http.Client
	mirrorFail   telemetry.Counter
	// RequireAuth demands a valid identity signature on every request.
	RequireAuth bool
}

// NewGatewayServer returns an empty gateway.
func NewGatewayServer(seed int64) *GatewayServer {
	log := &telemetry.AccessLog{}
	log.SetCapacity(liveAccessLogCap)
	return &GatewayServer{
		engine:       l7.NewEngine(seed),
		cas:          make(map[string]*CA),
		upstreams:    make(map[string]map[string][]*url.URL),
		rr:           make(map[string]int),
		start:        time.Now(), //canal:allow simdeterminism real HTTP server epoch; virtual time is offsets from this start
		log:          log,
		tracer:       trace.NewLive(),
		mirrorClient: &http.Client{Timeout: defaultMirrorTimeout},
	}
}

// Tracer exposes the gateway's live tracer (head-sampled and tail-kept
// traces of the real data path).
func (g *GatewayServer) Tracer() *trace.Tracer { return g.tracer }

// SetMirrorTimeout reconfigures the deadline applied to each mirrored
// shadow request.
func (g *GatewayServer) SetMirrorTimeout(d time.Duration) {
	g.mu.Lock()
	g.mirrorClient = &http.Client{Timeout: d}
	g.mu.Unlock()
}

// MirrorFailures returns how many mirrored shadow requests failed (build,
// transport, or timeout errors).
func (g *GatewayServer) MirrorFailures() float64 { return g.mirrorFail.Value() }

// AccessLog exposes the gateway's L7 access log.
func (g *GatewayServer) AccessLog() *telemetry.AccessLog { return g.log }

// EnableAdmission turns on proactive overload control for the real data
// path: a gateway-wide adaptive concurrency limit, per-tenant fair-share
// caps inside it, and per-tenant retry budgets. Shed requests get fast typed
// 429s with a Retry-After hint instead of queueing behind an overloaded
// proxy.
func (g *GatewayServer) EnableAdmission(cfg admission.Config) {
	g.mu.Lock()
	g.admit = admission.NewHTTPController(cfg)
	g.mu.Unlock()
}

// AdmissionMetrics returns the admission layer's metrics, or nil when
// disabled.
func (g *GatewayServer) AdmissionMetrics() *admission.Metrics {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.admit == nil {
		return nil
	}
	return g.admit.Metrics()
}

// RegisterTenant installs a tenant's trust domain.
func (g *GatewayServer) RegisterTenant(tenant string, ca *CA) {
	g.mu.Lock()
	g.cas[tenant] = ca
	g.mu.Unlock()
}

// serviceKey namespaces a service name by tenant inside the shared engine,
// the real-mode analogue of the vSwitch's globally unique service IDs.
func serviceKey(tenant, service string) string { return tenant + "/" + service }

// ConfigureService installs a tenant service's routing configuration and its
// upstream pools (subset name -> backend URLs).
func (g *GatewayServer) ConfigureService(tenant string, cfg ServiceConfig, pools map[string][]string) error {
	key := serviceKey(tenant, cfg.Service)
	cfg.Service = key
	if err := g.engine.Configure(cfg); err != nil {
		return err
	}
	parsed := make(map[string][]*url.URL, len(pools))
	for subset, addrs := range pools {
		for _, a := range addrs {
			u, err := url.Parse(a)
			if err != nil {
				return fmt.Errorf("canal: upstream %q: %w", a, err)
			}
			parsed[subset] = append(parsed[subset], u)
		}
	}
	g.mu.Lock()
	g.upstreams[key] = parsed
	g.mu.Unlock()
	return nil
}

// SetServiceRate applies (or updates) an emergency throttle on a tenant
// service — the gateway-side rapid intervention of §6.2.
func (g *GatewayServer) SetServiceRate(tenant, service string, rps, burst float64) error {
	return g.engine.SetServiceRate(serviceKey(tenant, service), rps, burst)
}

// ClearServiceRate removes a throttle.
func (g *GatewayServer) ClearServiceRate(tenant, service string) {
	g.engine.ClearServiceRate(serviceKey(tenant, service))
}

// signingPayload is the byte string a NodeAgent signs per request.
func signingPayload(tenant, source, method, path, timestamp string) []byte {
	h := sha256.Sum256([]byte(tenant + "\x00" + source + "\x00" + method + "\x00" + path + "\x00" + timestamp))
	return h[:]
}

// authenticate verifies the request's identity signature against the
// tenant's CA and returns the verified source identity.
func (g *GatewayServer) authenticate(r *http.Request, tenant string) (string, error) {
	g.mu.RLock()
	ca := g.cas[tenant]
	g.mu.RUnlock()
	if ca == nil {
		return "", fmt.Errorf("unknown tenant %q", tenant)
	}
	certB64 := r.Header.Get(HeaderCert)
	sigB64 := r.Header.Get(HeaderSignature)
	ts := r.Header.Get(HeaderTimestamp)
	if certB64 == "" || sigB64 == "" || ts == "" {
		return "", fmt.Errorf("missing identity headers")
	}
	certDER, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return "", fmt.Errorf("bad cert encoding: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("bad signature encoding: %w", err)
	}
	tsn, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return "", fmt.Errorf("bad timestamp: %w", err)
	}
	if d := time.Since(time.Unix(tsn, 0)); d > authSkew || d < -authSkew { //canal:allow simdeterminism auth skew check needs the real clock
		return "", fmt.Errorf("request timestamp outside accepted skew")
	}
	id, pub, err := ca.VerifyPeer(certDER)
	if err != nil {
		return "", err
	}
	payload := signingPayload(tenant, id, r.Method, r.URL.Path, ts)
	if !ecdsa.VerifyASN1(pub, payload, sig) {
		return "", fmt.Errorf("signature verification failed")
	}
	return id, nil
}

// startTrace joins the request's propagated W3C trace context when a valid
// traceparent header is present, or starts a fresh trace otherwise. The
// trace is keyed by the requesting tenant: the collector is shared across
// every tenant behind this gateway, and the span name carries request data
// (method + path), so an unkeyed trace would leak one tenant's paths into
// another tenant's exports.
func (g *GatewayServer) startTrace(r *http.Request) *trace.Trace {
	if g.tracer == nil {
		return nil
	}
	tenant := r.Header.Get(HeaderTenant)
	name := r.Method + " " + r.URL.Path
	if id, parent, sampled, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); err == nil {
		return g.tracer.StartRemoteTenant(id, parent, sampled, "gateway", tenant, name)
	}
	return g.tracer.StartTenant("gateway", tenant, name)
}

// fail writes a local error response, stamping the trace ID header on it so
// the caller can join the rejection to its trace, and logs the request. It
// returns the status for the caller's trace bookkeeping.
//
//canal:boundary w is the requesting tenant's own ResponseWriter and the access log entry is keyed by the tenant argument
func (g *GatewayServer) fail(w http.ResponseWriter, r *http.Request, tr *trace.Trace,
	tenant, service, source string, status int, msg string, started time.Time) int {
	if tr != nil {
		w.Header().Set(HeaderTrace, tr.ID.String())
	}
	g.logReq(r, tenant, service, source, status, started, traceIDString(tr))
	http.Error(w, msg, status)
	return status
}

// traceIDString returns the trace's hex ID, or "" for an untraced request.
func traceIDString(tr *trace.Trace) string {
	if tr == nil {
		return ""
	}
	return tr.ID.String()
}

// ServeHTTP implements the multi-tenant gateway data path: extract or start
// the trace, authenticate, route, pick an upstream from the chosen subset,
// and reverse-proxy, propagating the trace context upstream.
func (g *GatewayServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	started := time.Now() //canal:allow simdeterminism real request latency measurement on the live HTTP path
	tr := g.startTrace(r)
	status := http.StatusOK
	defer func() {
		if g.tracer != nil && tr != nil {
			g.tracer.Finish(tr, status)
		}
	}()
	tenant := r.Header.Get(HeaderTenant)
	service := r.Header.Get(HeaderService)
	if tenant == "" || service == "" {
		status = g.fail(w, r, tr, tenant, service, "", http.StatusBadRequest, "canal: missing tenant/service headers", started)
		return
	}
	source := r.Header.Get(HeaderSource)
	if g.RequireAuth {
		id, err := g.authenticate(r, tenant)
		if err != nil {
			status = g.fail(w, r, tr, tenant, service, source, http.StatusForbidden, "canal: "+err.Error(), started)
			return
		}
		// The verified identity overrides whatever the client claimed.
		source = shortID(id)
	}

	g.mu.RLock()
	admit := g.admit
	g.mu.RUnlock()
	proxied := false
	if admit != nil {
		release, rej := admit.Admit(tenant, service, r.Header.Get(HeaderRetry) != "")
		if rej != nil {
			w.Header().Set("Retry-After", strconv.FormatFloat(rej.RetryAfter.Seconds(), 'f', -1, 64))
			status = g.fail(w, r, tr, tenant, service, source, http.StatusTooManyRequests, "canal: "+rej.Error(), started)
			return
		}
		defer func() { release(proxied) }()
	}

	req := &Request{
		Tenant:        tenant,
		Service:       serviceKey(tenant, service),
		SourceService: source,
		SourcePod:     r.Header.Get(HeaderSourcePod),
		Method:        r.Method,
		Path:          r.URL.Path,
		Headers:       flattenHeaders(r.Header),
		Cookies:       flattenCookies(r),
		BodyBytes:     int(r.ContentLength),
		TLS:           r.TLS != nil,
	}
	decision, err := g.engine.Route(time.Since(g.start), req) //canal:allow simdeterminism live gateway clock feeds rate limiters with real elapsed time
	if err != nil {
		code := http.StatusServiceUnavailable
		if de, ok := err.(*l7.DecisionError); ok {
			code = de.Status
		}
		status = g.fail(w, r, tr, tenant, service, source, code, "canal: "+err.Error(), started)
		return
	}

	if decision.Delay > 0 {
		// Fault injection: hold the request before proxying.
		time.Sleep(decision.Delay) //canal:allow simdeterminism fault injection must really delay live requests
	}
	if decision.Timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), decision.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	target, err := g.pickUpstream(req.Service, decision.Subset)
	if err != nil {
		status = g.fail(w, r, tr, tenant, service, source, http.StatusServiceUnavailable, "canal: "+err.Error(), started)
		return
	}
	if decision.MirrorTo != "" {
		if mirror, err := g.pickUpstream(req.Service, decision.MirrorTo); err == nil {
			g.spawnMirror(r, mirror, decision)
		}
	}

	proxy := &httputil.ReverseProxy{
		Director: func(out *http.Request) {
			out.URL.Scheme = target.Scheme
			out.URL.Host = target.Host
			if decision.PathRewrite != "" {
				out.URL.Path = decision.PathRewrite
			}
			for k, v := range decision.SetHeaders {
				out.Header.Set(k, v)
			}
			for _, k := range decision.RemoveHeaders {
				out.Header.Del(k)
			}
			out.Header.Set(HeaderSubset, decision.Subset)
			if tr != nil {
				// Propagate the trace context upstream: the gateway's root
				// span becomes the upstream's parent.
				out.Header.Set(trace.TraceparentHeader, trace.Traceparent(tr.ID, tr.Root().ID, tr.Sampled))
			}
		},
		ModifyResponse: func(resp *http.Response) error {
			// Record the upstream's real status so the trace, the access
			// log, and tail retention ("errored traces are always kept")
			// see 4xx/5xx exchanges as errors, and stamp the trace ID on
			// upstream error responses so callers can join them.
			status = resp.StatusCode
			if resp.StatusCode >= 400 && tr != nil {
				resp.Header.Set(HeaderTrace, tr.ID.String())
			}
			return nil
		},
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
			proxied = false
			status = g.fail(w, r, tr, tenant, service, source, http.StatusBadGateway, "canal: upstream: "+err.Error(), started)
		},
	}
	proxied = true
	var upstreamStart time.Duration
	if g.tracer != nil {
		upstreamStart = g.tracer.Now()
	}
	proxy.ServeHTTP(w, r)
	if g.tracer != nil && tr != nil {
		// One hop span around the upstream exchange separates gateway
		// overhead from upstream service time in the trace.
		tr.AddHop(trace.Hop{Name: "gateway/upstream", Start: upstreamStart, End: g.tracer.Now()})
	}
	if proxied {
		g.logReq(r, tenant, service, source, status, started, traceIDString(tr))
	}
}

// pickUpstream round-robins within a subset pool.
func (g *GatewayServer) pickUpstream(key, subset string) (*url.URL, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pool := g.upstreams[key][subset]
	if len(pool) == 0 {
		return nil, fmt.Errorf("no upstreams for %s subset %q", key, subset)
	}
	cursor := key + "|" + subset
	u := pool[g.rr[cursor]%len(pool)]
	g.rr[cursor]++
	return u, nil
}

// spawnMirror prepares a copy of the request for the shadow subset and sends
// it on a background goroutine. The body is buffered up to mirrorBodyLimit so
// the mirror carries the same payload as the primary; oversized bodies are
// mirrored without a body rather than stalling the primary path. The primary
// request's body is restored before this returns, so the reverse proxy still
// streams it intact.
func (g *GatewayServer) spawnMirror(r *http.Request, target *url.URL, decision l7.Decision) {
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		buffered, err := io.ReadAll(io.LimitReader(r.Body, mirrorBodyLimit+1))
		if err != nil {
			g.mirrorFail.Inc()
			r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(buffered), errReader{err}))
			return
		}
		if len(buffered) > mirrorBodyLimit {
			// Too big to hold: give the primary back everything read so far
			// plus the unread remainder, and mirror headers only.
			rest := r.Body
			r.Body = io.NopCloser(io.MultiReader(bytes.NewReader(buffered), rest))
		} else {
			r.Body = io.NopCloser(bytes.NewReader(buffered))
			body = buffered
		}
	}
	headers := r.Header.Clone()
	go g.mirror(r.Method, r.URL.Path, headers, body, target, decision)
}

// errReader replays a body read error to the primary request after the
// mirror's buffering attempt failed partway.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// mirror sends a copy of the request to the shadow subset with the dedicated
// mirror client (its own timeout), discarding the response body. Failures are
// counted, never surfaced to the primary request.
func (g *GatewayServer) mirror(method, path string, headers http.Header, body []byte, target *url.URL, decision l7.Decision) {
	if decision.PathRewrite != "" {
		path = decision.PathRewrite
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, target.Scheme+"://"+target.Host+path, rd)
	if err != nil {
		g.mirrorFail.Inc()
		return
	}
	for k, v := range headers {
		req.Header[k] = v
	}
	req.Header.Set(HeaderSubset, decision.MirrorTo)
	g.mu.RLock()
	client := g.mirrorClient
	g.mu.RUnlock()
	resp, err := client.Do(req)
	if err != nil {
		g.mirrorFail.Inc()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (g *GatewayServer) logReq(r *http.Request, tenant, service, source string, status int, started time.Time, traceID string) {
	g.log.Log(telemetry.AccessEntry{
		At:      time.Since(g.start), //canal:allow simdeterminism access-log timestamps on the live path are wall-clock offsets
		Layer:   telemetry.AccessL7,
		Where:   "gateway",
		Tenant:  tenant,
		Service: service,
		SrcPod:  source,
		Method:  r.Method,
		Path:    r.URL.Path,
		Status:  status,
		Latency: time.Since(started), //canal:allow simdeterminism real request latency on the live path
		TraceID: traceID,
	})
}

func flattenHeaders(h http.Header) map[string]string {
	out := make(map[string]string, len(h))
	for k, v := range h {
		if len(v) > 0 {
			out[http.CanonicalHeaderKey(k)] = v[0]
		}
	}
	// Route matching uses the original names case-insensitively via
	// canonical form; expose lower-case too for convenience.
	for k, v := range h {
		if len(v) > 0 {
			out[k] = v[0]
		}
	}
	return out
}

func flattenCookies(r *http.Request) map[string]string {
	cookies := r.Cookies()
	out := make(map[string]string, len(cookies))
	for _, c := range cookies {
		out[c.Name] = c.Value
	}
	return out
}

// NodeAgent is the real-mode on-node proxy: it forwards workload requests to
// the gateway, attaching the workload's mesh identity and a per-request
// signature (encryption and authentication stay on the user node, §4.1.1).
type NodeAgent struct {
	Tenant   string
	Identity *Identity
	Gateway  string // gateway base URL
	Client   *http.Client
	// Tracer originates the workload-side trace context propagated to the
	// gateway via traceparent. Nil disables client-side tracing.
	Tracer *trace.Tracer
}

// NewNodeAgent returns an agent fronting one workload identity.
func NewNodeAgent(tenant string, id *Identity, gatewayURL string) *NodeAgent {
	return &NodeAgent{Tenant: tenant, Identity: id, Gateway: gatewayURL, Client: http.DefaultClient, Tracer: trace.NewLive()}
}

// shortID extracts the service name from a SPIFFE-style identity for the
// source-service header (last path element).
func shortID(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			return id[i+1:]
		}
	}
	return id
}

// Do sends one request through the mesh to a destination service. When the
// agent has a Tracer and the caller did not supply its own traceparent, the
// agent originates the trace context the gateway joins.
func (a *NodeAgent) Do(method, service, path string, body io.Reader, headers map[string]string) (*http.Response, error) {
	req, err := http.NewRequest(method, a.Gateway+path, body)
	if err != nil {
		return nil, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	req.Header.Set(HeaderTenant, a.Tenant)
	req.Header.Set(HeaderService, service)
	req.Header.Set(HeaderSource, shortID(a.Identity.ID))
	ts := strconv.FormatInt(time.Now().Unix(), 10) //canal:allow simdeterminism signed auth timestamps must be real time for skew checks
	req.Header.Set(HeaderTimestamp, ts)
	req.Header.Set(HeaderCert, base64.StdEncoding.EncodeToString(a.Identity.CertDER))
	payload := signingPayload(a.Tenant, a.Identity.ID, method, path, ts)
	sig, err := signASN1(a.Identity, payload)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	var tr *trace.Trace
	if a.Tracer != nil && req.Header.Get(trace.TraceparentHeader) == "" {
		tr = a.Tracer.StartTenant("node-agent", a.Tenant, method+" "+path)
		req.Header.Set(trace.TraceparentHeader, trace.Traceparent(tr.ID, tr.Root().ID, tr.Sampled))
	}
	resp, err := a.Client.Do(req)
	if tr != nil {
		status := http.StatusBadGateway
		if err == nil {
			status = resp.StatusCode
		}
		a.Tracer.Finish(tr, status)
	}
	return resp, err
}

// Get is a convenience wrapper over Do.
func (a *NodeAgent) Get(service, path string) (*http.Response, error) {
	return a.Do(http.MethodGet, service, path, nil, nil)
}

func signASN1(id *Identity, digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, id.Key, digest)
}
