package canal

import (
	"context"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/l7"
	"canalmesh/internal/telemetry"
)

// Identity/auth headers of the real-mode data plane. The NodeAgent signs
// each request with the workload's mesh identity; the gateway verifies the
// signature against the tenant's CA — per-request zero-trust authentication
// without trusting the network in between.
const (
	HeaderTenant    = "X-Canal-Tenant"
	HeaderService   = "X-Canal-Service"
	HeaderSource    = "X-Canal-Source"
	HeaderSourcePod = "X-Canal-Source-Pod"
	HeaderCert      = "X-Canal-Cert"
	HeaderSignature = "X-Canal-Signature"
	HeaderTimestamp = "X-Canal-Timestamp"
	HeaderSubset    = "X-Canal-Subset" // set by the gateway toward upstreams
	// HeaderRetry marks a request as a retry; the admission layer charges
	// it against the tenant's retry budget.
	HeaderRetry = "X-Canal-Retry"
)

// authSkew is the accepted clock skew for signed requests.
const authSkew = 2 * time.Minute

// GatewayServer is the real-TCP centralized mesh gateway: one process
// serving many tenants, routing on the shared L7 engine and reverse-proxying
// to registered upstream pools.
type GatewayServer struct {
	mu        sync.RWMutex
	engine    *l7.Engine
	cas       map[string]*CA                   // tenant -> trust domain
	upstreams map[string]map[string][]*url.URL // engine service key -> subset -> URLs
	rr        map[string]int                   // round-robin cursors
	start     time.Time
	log       *telemetry.AccessLog
	admit     *admission.HTTPController
	// RequireAuth demands a valid identity signature on every request.
	RequireAuth bool
}

// NewGatewayServer returns an empty gateway.
func NewGatewayServer(seed int64) *GatewayServer {
	return &GatewayServer{
		engine:    l7.NewEngine(seed),
		cas:       make(map[string]*CA),
		upstreams: make(map[string]map[string][]*url.URL),
		rr:        make(map[string]int),
		start:     time.Now(), //canal:allow simdeterminism real HTTP server epoch; virtual time is offsets from this start
		log:       &telemetry.AccessLog{},
	}
}

// AccessLog exposes the gateway's L7 access log.
func (g *GatewayServer) AccessLog() *telemetry.AccessLog { return g.log }

// EnableAdmission turns on proactive overload control for the real data
// path: a gateway-wide adaptive concurrency limit, per-tenant fair-share
// caps inside it, and per-tenant retry budgets. Shed requests get fast typed
// 429s with a Retry-After hint instead of queueing behind an overloaded
// proxy.
func (g *GatewayServer) EnableAdmission(cfg admission.Config) {
	g.mu.Lock()
	g.admit = admission.NewHTTPController(cfg)
	g.mu.Unlock()
}

// AdmissionMetrics returns the admission layer's metrics, or nil when
// disabled.
func (g *GatewayServer) AdmissionMetrics() *admission.Metrics {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.admit == nil {
		return nil
	}
	return g.admit.Metrics()
}

// RegisterTenant installs a tenant's trust domain.
func (g *GatewayServer) RegisterTenant(tenant string, ca *CA) {
	g.mu.Lock()
	g.cas[tenant] = ca
	g.mu.Unlock()
}

// serviceKey namespaces a service name by tenant inside the shared engine,
// the real-mode analogue of the vSwitch's globally unique service IDs.
func serviceKey(tenant, service string) string { return tenant + "/" + service }

// ConfigureService installs a tenant service's routing configuration and its
// upstream pools (subset name -> backend URLs).
func (g *GatewayServer) ConfigureService(tenant string, cfg ServiceConfig, pools map[string][]string) error {
	key := serviceKey(tenant, cfg.Service)
	cfg.Service = key
	if err := g.engine.Configure(cfg); err != nil {
		return err
	}
	parsed := make(map[string][]*url.URL, len(pools))
	for subset, addrs := range pools {
		for _, a := range addrs {
			u, err := url.Parse(a)
			if err != nil {
				return fmt.Errorf("canal: upstream %q: %w", a, err)
			}
			parsed[subset] = append(parsed[subset], u)
		}
	}
	g.mu.Lock()
	g.upstreams[key] = parsed
	g.mu.Unlock()
	return nil
}

// SetServiceRate applies (or updates) an emergency throttle on a tenant
// service — the gateway-side rapid intervention of §6.2.
func (g *GatewayServer) SetServiceRate(tenant, service string, rps, burst float64) error {
	return g.engine.SetServiceRate(serviceKey(tenant, service), rps, burst)
}

// ClearServiceRate removes a throttle.
func (g *GatewayServer) ClearServiceRate(tenant, service string) {
	g.engine.ClearServiceRate(serviceKey(tenant, service))
}

// signingPayload is the byte string a NodeAgent signs per request.
func signingPayload(tenant, source, method, path, timestamp string) []byte {
	h := sha256.Sum256([]byte(tenant + "\x00" + source + "\x00" + method + "\x00" + path + "\x00" + timestamp))
	return h[:]
}

// authenticate verifies the request's identity signature against the
// tenant's CA and returns the verified source identity.
func (g *GatewayServer) authenticate(r *http.Request, tenant string) (string, error) {
	g.mu.RLock()
	ca := g.cas[tenant]
	g.mu.RUnlock()
	if ca == nil {
		return "", fmt.Errorf("unknown tenant %q", tenant)
	}
	certB64 := r.Header.Get(HeaderCert)
	sigB64 := r.Header.Get(HeaderSignature)
	ts := r.Header.Get(HeaderTimestamp)
	if certB64 == "" || sigB64 == "" || ts == "" {
		return "", fmt.Errorf("missing identity headers")
	}
	certDER, err := base64.StdEncoding.DecodeString(certB64)
	if err != nil {
		return "", fmt.Errorf("bad cert encoding: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(sigB64)
	if err != nil {
		return "", fmt.Errorf("bad signature encoding: %w", err)
	}
	tsn, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return "", fmt.Errorf("bad timestamp: %w", err)
	}
	if d := time.Since(time.Unix(tsn, 0)); d > authSkew || d < -authSkew { //canal:allow simdeterminism auth skew check needs the real clock
		return "", fmt.Errorf("request timestamp outside accepted skew")
	}
	id, pub, err := ca.VerifyPeer(certDER)
	if err != nil {
		return "", err
	}
	payload := signingPayload(tenant, id, r.Method, r.URL.Path, ts)
	if !ecdsa.VerifyASN1(pub, payload, sig) {
		return "", fmt.Errorf("signature verification failed")
	}
	return id, nil
}

// ServeHTTP implements the multi-tenant gateway data path: authenticate,
// route, pick an upstream from the chosen subset, and reverse-proxy.
func (g *GatewayServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	started := time.Now() //canal:allow simdeterminism real request latency measurement on the live HTTP path
	tenant := r.Header.Get(HeaderTenant)
	service := r.Header.Get(HeaderService)
	if tenant == "" || service == "" {
		http.Error(w, "canal: missing tenant/service headers", http.StatusBadRequest)
		return
	}
	source := r.Header.Get(HeaderSource)
	if g.RequireAuth {
		id, err := g.authenticate(r, tenant)
		if err != nil {
			g.logReq(r, tenant, service, source, http.StatusForbidden, started)
			http.Error(w, "canal: "+err.Error(), http.StatusForbidden)
			return
		}
		// The verified identity overrides whatever the client claimed.
		source = shortID(id)
	}

	g.mu.RLock()
	admit := g.admit
	g.mu.RUnlock()
	proxied := false
	if admit != nil {
		release, rej := admit.Admit(tenant, service, r.Header.Get(HeaderRetry) != "")
		if rej != nil {
			g.logReq(r, tenant, service, source, http.StatusTooManyRequests, started)
			w.Header().Set("Retry-After", strconv.FormatFloat(rej.RetryAfter.Seconds(), 'f', -1, 64))
			http.Error(w, "canal: "+rej.Error(), http.StatusTooManyRequests)
			return
		}
		defer func() { release(proxied) }()
	}

	req := &Request{
		Tenant:        tenant,
		Service:       serviceKey(tenant, service),
		SourceService: source,
		SourcePod:     r.Header.Get(HeaderSourcePod),
		Method:        r.Method,
		Path:          r.URL.Path,
		Headers:       flattenHeaders(r.Header),
		Cookies:       flattenCookies(r),
		BodyBytes:     int(r.ContentLength),
		TLS:           r.TLS != nil,
	}
	decision, err := g.engine.Route(time.Since(g.start), req) //canal:allow simdeterminism live gateway clock feeds rate limiters with real elapsed time
	if err != nil {
		status := http.StatusServiceUnavailable
		if de, ok := err.(*l7.DecisionError); ok {
			status = de.Status
		}
		g.logReq(r, tenant, service, source, status, started)
		http.Error(w, "canal: "+err.Error(), status)
		return
	}

	if decision.Delay > 0 {
		// Fault injection: hold the request before proxying.
		time.Sleep(decision.Delay) //canal:allow simdeterminism fault injection must really delay live requests
	}
	if decision.Timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), decision.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	target, err := g.pickUpstream(req.Service, decision.Subset)
	if err != nil {
		g.logReq(r, tenant, service, source, http.StatusServiceUnavailable, started)
		http.Error(w, "canal: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if decision.MirrorTo != "" {
		if mirror, err := g.pickUpstream(req.Service, decision.MirrorTo); err == nil {
			go g.mirror(r, mirror, decision)
		}
	}

	proxy := &httputil.ReverseProxy{
		Director: func(out *http.Request) {
			out.URL.Scheme = target.Scheme
			out.URL.Host = target.Host
			if decision.PathRewrite != "" {
				out.URL.Path = decision.PathRewrite
			}
			for k, v := range decision.SetHeaders {
				out.Header.Set(k, v)
			}
			for _, k := range decision.RemoveHeaders {
				out.Header.Del(k)
			}
			out.Header.Set(HeaderSubset, decision.Subset)
		},
		ErrorHandler: func(w http.ResponseWriter, _ *http.Request, err error) {
			proxied = false
			g.logReq(r, tenant, service, source, http.StatusBadGateway, started)
			http.Error(w, "canal: upstream: "+err.Error(), http.StatusBadGateway)
		},
	}
	proxied = true
	proxy.ServeHTTP(w, r)
	g.logReq(r, tenant, service, source, http.StatusOK, started)
}

// pickUpstream round-robins within a subset pool.
func (g *GatewayServer) pickUpstream(key, subset string) (*url.URL, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pool := g.upstreams[key][subset]
	if len(pool) == 0 {
		return nil, fmt.Errorf("no upstreams for %s subset %q", key, subset)
	}
	cursor := key + "|" + subset
	u := pool[g.rr[cursor]%len(pool)]
	g.rr[cursor]++
	return u, nil
}

// mirror sends a copy of the request to the shadow subset, discarding the
// response (traffic mirroring for testing-in-production).
func (g *GatewayServer) mirror(r *http.Request, target *url.URL, decision l7.Decision) {
	path := r.URL.Path
	if decision.PathRewrite != "" {
		path = decision.PathRewrite
	}
	req, err := http.NewRequest(r.Method, target.Scheme+"://"+target.Host+path, nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (g *GatewayServer) logReq(r *http.Request, tenant, service, source string, status int, started time.Time) {
	g.log.Log(telemetry.AccessEntry{
		At:      time.Since(g.start), //canal:allow simdeterminism access-log timestamps on the live path are wall-clock offsets
		Layer:   telemetry.AccessL7,
		Where:   "gateway",
		Tenant:  tenant,
		Service: service,
		SrcPod:  source,
		Method:  r.Method,
		Path:    r.URL.Path,
		Status:  status,
		Latency: time.Since(started), //canal:allow simdeterminism real request latency on the live path
	})
}

func flattenHeaders(h http.Header) map[string]string {
	out := make(map[string]string, len(h))
	for k, v := range h {
		if len(v) > 0 {
			out[http.CanonicalHeaderKey(k)] = v[0]
		}
	}
	// Route matching uses the original names case-insensitively via
	// canonical form; expose lower-case too for convenience.
	for k, v := range h {
		if len(v) > 0 {
			out[k] = v[0]
		}
	}
	return out
}

func flattenCookies(r *http.Request) map[string]string {
	cookies := r.Cookies()
	out := make(map[string]string, len(cookies))
	for _, c := range cookies {
		out[c.Name] = c.Value
	}
	return out
}

// NodeAgent is the real-mode on-node proxy: it forwards workload requests to
// the gateway, attaching the workload's mesh identity and a per-request
// signature (encryption and authentication stay on the user node, §4.1.1).
type NodeAgent struct {
	Tenant   string
	Identity *Identity
	Gateway  string // gateway base URL
	Client   *http.Client
}

// NewNodeAgent returns an agent fronting one workload identity.
func NewNodeAgent(tenant string, id *Identity, gatewayURL string) *NodeAgent {
	return &NodeAgent{Tenant: tenant, Identity: id, Gateway: gatewayURL, Client: http.DefaultClient}
}

// shortID extracts the service name from a SPIFFE-style identity for the
// source-service header (last path element).
func shortID(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			return id[i+1:]
		}
	}
	return id
}

// Do sends one request through the mesh to a destination service.
func (a *NodeAgent) Do(method, service, path string, body io.Reader, headers map[string]string) (*http.Response, error) {
	req, err := http.NewRequest(method, a.Gateway+path, body)
	if err != nil {
		return nil, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	req.Header.Set(HeaderTenant, a.Tenant)
	req.Header.Set(HeaderService, service)
	req.Header.Set(HeaderSource, shortID(a.Identity.ID))
	ts := strconv.FormatInt(time.Now().Unix(), 10) //canal:allow simdeterminism signed auth timestamps must be real time for skew checks
	req.Header.Set(HeaderTimestamp, ts)
	req.Header.Set(HeaderCert, base64.StdEncoding.EncodeToString(a.Identity.CertDER))
	payload := signingPayload(a.Tenant, a.Identity.ID, method, path, ts)
	sig, err := signASN1(a.Identity, payload)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	return a.Client.Do(req)
}

// Get is a convenience wrapper over Do.
func (a *NodeAgent) Get(service, path string) (*http.Response, error) {
	return a.Do(http.MethodGet, service, path, nil, nil)
}

func signASN1(id *Identity, digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(rand.Reader, id.Key, digest)
}
