package canal

import (
	"fmt"
	"net/netip"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/anomaly"
	"canalmesh/internal/cloud"
	"canalmesh/internal/federation"
	"canalmesh/internal/gateway"
	"canalmesh/internal/l7"
	"canalmesh/internal/netmodel"
	"canalmesh/internal/scaling"
	"canalmesh/internal/sim"
	"canalmesh/internal/workload"
)

// Scenario is the public facade over the discrete-event simulation: build one
// or more regions, provision gateway backends, register tenant services,
// drive load, inject faults, and observe the mesh's availability/elasticity
// machinery — the same substrate cmd/canalbench uses to regenerate the paper.
//
// A zero-config scenario is a single region ("region-1"). Configuring
// ScenarioConfig.Regions builds a federation instead: every region gets its
// own gateway and backends, all pairs are peered, and traffic entering an
// unhealthy region spills over the WAN to a healthy peer.
//
// All time is virtual: a Scenario with hours of traffic runs in milliseconds
// and is fully deterministic for a given seed.
type Scenario struct {
	sim     *sim.Sim
	regions []*Region
	byName  map[string]*Region
	// fed is the peered multi-region mesh; nil for a single-region scenario,
	// which keeps the zero-config path free of federation machinery.
	fed *federation.Mesh
	end time.Duration
}

// ScenarioConfig sizes a scenario.
type ScenarioConfig struct {
	Seed            int64
	AZs             []string // default: az1, az2
	ShardSize       int      // backends per service (default 3)
	Backends        int      // regular backends per region, spread over AZs (default 6)
	ReplicasPerBE   int      // default 2
	CoresPerReplica int      // default 2
	Sandboxes       int      // default 1

	// Regions, when set, builds a multi-region federation: one entry per
	// region, every pair peered. Empty means the classic single region
	// "region-1" with the scenario-level AZ/backend settings and no
	// federation machinery at all.
	Regions []RegionConfig
}

// RegionConfig describes one federation region. Zero fields inherit the
// scenario-level settings.
type RegionConfig struct {
	Name     string   // required, unique
	AZs      []string // default ScenarioConfig.AZs
	Backends int      // default ScenarioConfig.Backends
}

// Region is a handle to one region of a scenario, returned by
// Scenario.Region.
type Region struct {
	sc      *Scenario
	name    string
	cloud   *cloud.Region
	gw      *gateway.Gateway
	planner *scaling.Planner
	monitor *anomaly.Monitor
	// fr is the federation-side registration; nil in single-region mode.
	fr      *federation.Region
	firstAZ string
}

// RegionRoutingStats counts how a region's ingress traffic was routed:
// served by in-region backends, spilled over the WAN to a peer, blackholed
// into a partitioned link, or unserved entirely. All zero in single-region
// scenarios (everything is Local by construction and not counted).
type RegionRoutingStats struct {
	Local     int
	Spilled   int
	SpillLost int
	Unserved  int
}

// NewScenario builds a ready-to-use simulated region + gateway — or, with
// cfg.Regions set, a peered multi-region federation.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if len(cfg.AZs) == 0 {
		cfg.AZs = []string{"az1", "az2"}
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 6
	}
	if cfg.ReplicasPerBE <= 0 {
		cfg.ReplicasPerBE = 2
	}
	if cfg.CoresPerReplica <= 0 {
		cfg.CoresPerReplica = 2
	}
	if cfg.Sandboxes < 0 {
		cfg.Sandboxes = 0
	} else if cfg.Sandboxes == 0 {
		cfg.Sandboxes = 1
	}
	s := sim.New(cfg.Seed)
	sc := &Scenario{sim: s, byName: make(map[string]*Region)}

	regions := cfg.Regions
	if len(regions) == 0 {
		regions = []RegionConfig{{Name: "region-1"}}
	} else {
		sc.fed = federation.New(federation.Config{Sim: s})
	}
	for _, rc := range regions {
		if rc.Name == "" {
			return nil, fmt.Errorf("canal: RegionConfig needs a Name")
		}
		if _, dup := sc.byName[rc.Name]; dup {
			return nil, fmt.Errorf("canal: duplicate region %q", rc.Name)
		}
		azs := rc.AZs
		if len(azs) == 0 {
			azs = cfg.AZs
		}
		backends := rc.Backends
		if backends <= 0 {
			backends = cfg.Backends
		}
		region := cloud.NewRegion(s, rc.Name, azs...)
		g := gateway.New(gateway.Config{
			Sim: s, Costs: netmodel.Default(), Engine: l7.NewEngine(cfg.Seed),
			ShardSize: cfg.ShardSize, Seed: cfg.Seed,
		})
		for i := 0; i < backends; i++ {
			az := region.AZ(azs[i%len(azs)])
			if _, err := g.AddBackend(az, cfg.ReplicasPerBE, cfg.CoresPerReplica, false); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.Sandboxes; i++ {
			if _, err := g.AddBackend(region.AZ(azs[0]), cfg.ReplicasPerBE, cfg.CoresPerReplica, true); err != nil {
				return nil, err
			}
		}
		r := &Region{sc: sc, name: rc.Name, cloud: region, gw: g, firstAZ: azs[0]}
		r.planner = scaling.NewPlanner(s, g, region, scaling.DefaultOptions())
		r.monitor = anomaly.NewMonitor(s, g, r.planner, anomaly.DefaultThresholds())
		if sc.fed != nil {
			r.fr = sc.fed.AddRegion(region, g)
		}
		sc.regions = append(sc.regions, r)
		sc.byName[rc.Name] = r
	}
	if sc.fed != nil {
		sc.fed.PeerAll()
	}
	return sc, nil
}

// Region returns the named region's handle, or nil. Single-region scenarios
// own exactly one region named "region-1".
func (sc *Scenario) Region(name string) *Region { return sc.byName[name] }

// Regions returns every region handle in configuration order.
func (sc *Scenario) Regions() []*Region { return sc.regions }

// home is the scenario's default region: the first configured one.
func (sc *Scenario) home() *Region { return sc.regions[0] }

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Routing returns the region's federation routing counters; zero in
// single-region scenarios.
func (r *Region) Routing() RegionRoutingStats {
	if r.fr == nil {
		return RegionRoutingStats{}
	}
	st := r.fr.Stats()
	return RegionRoutingStats{Local: st.Local, Spilled: st.Spilled, SpillLost: st.SpillLost, Unserved: st.Unserved}
}

// AdmissionOptions tunes a scenario's admission layer. Zero values take the
// admission package defaults.
type AdmissionOptions struct {
	// Weights biases per-tenant fair CPU shares (default weight 1 each).
	Weights map[string]float64
	// Target / Interval tune the CoDel queue-management stage.
	Target   time.Duration
	Interval time.Duration
}

// EnableAdmission turns on the proactive overload-control layer — per-tenant
// weighted fair queues with CoDel on every gateway replica, plus per-service
// adaptive concurrency limits — so one tenant's flash crowd is shed with fast
// 429s instead of queueing behind every other tenant's traffic. Call it
// before driving load; in a multi-region scenario it applies to every
// region's gateway. It composes with the anomaly monitor's sandbox
// migration: admission bounds the blast radius during the tens of seconds the
// monitor needs to confirm an anomaly and migrate the offender.
func (sc *Scenario) EnableAdmission(opt AdmissionOptions) {
	for _, r := range sc.regions {
		r.gw.EnableAdmission(admission.Config{
			Weights:  opt.Weights,
			Target:   opt.Target,
			Interval: opt.Interval,
		})
	}
}

// ScenarioStats is a point-in-time snapshot of a scenario's availability and
// elasticity machinery, taken with Scenario.Stats.
type ScenarioStats struct {
	// AdmissionSheds is the total number of requests the admission layer
	// rejected across all regions (0 when admission is disabled).
	AdmissionSheds float64
	// AdmissionFairness is the Jain fairness index over per-tenant admitted
	// request counts in the home (first) region, in (0, 1]; 1 when admission
	// is disabled or idle.
	AdmissionFairness float64
	// ScalingOps is the number of precise-scaling operations performed
	// across all regions.
	ScalingOps int
	// Interventions holds human-readable records of the anomaly monitors'
	// actions, regions in configuration order. Multi-region entries carry a
	// "region: " prefix.
	Interventions []string
}

// Stats snapshots the scenario's admission, scaling and anomaly-intervention
// counters. Call it after RunFor; the snapshot does not update afterwards.
func (sc *Scenario) Stats() ScenarioStats {
	st := ScenarioStats{AdmissionFairness: 1}
	if m := sc.home().gw.AdmissionMetrics(); m != nil {
		st.AdmissionFairness = m.FairnessIndex()
	}
	for _, r := range sc.regions {
		if m := r.gw.AdmissionMetrics(); m != nil {
			st.AdmissionSheds += m.ShedTotal()
		}
		st.ScalingOps += len(r.planner.Events())
		for _, a := range r.monitor.Actions() {
			line := fmt.Sprintf("%v %s on service %d (%s)", a.At, a.Action, a.Service, a.Reason)
			if sc.fed != nil {
				line = r.name + ": " + line
			}
			st.Interventions = append(st.Interventions, line)
		}
	}
	return st
}

// Service is a handle to one registered tenant service in a scenario. In a
// multi-region scenario the service exists in every region (same tenant,
// name, and VNI), and the handle's per-service accessors (Backends,
// Sandboxed, SetSessions, latency percentiles) read the home region's
// registration.
type Service struct {
	sc *Scenario
	st *gateway.ServiceState
	// fed is the cross-region registration; nil in single-region mode.
	fed *federation.Service
}

// RegisterService installs a tenant service with its L7 configuration — in
// every region of a multi-region scenario. Distinct tenants may reuse
// identical addresses (overlapping VPCs); the VNI keeps them apart.
func (sc *Scenario) RegisterService(tenant, name string, vni uint32, addr string, cfg ServiceConfig) (*Service, error) {
	ip, err := netip.ParseAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("canal: service address: %w", err)
	}
	if sc.fed != nil {
		fsvc, err := sc.fed.AddService(tenant, name, vni, ip, 80, false, cfg)
		if err != nil {
			return nil, err
		}
		return &Service{sc: sc, st: fsvc.State(sc.home().name), fed: fsvc}, nil
	}
	st, err := sc.home().gw.RegisterService(tenant, name, vni, ip, 80, false, cfg)
	if err != nil {
		return nil, err
	}
	return &Service{sc: sc, st: st}, nil
}

// RunFor executes the scenario for the given virtual duration, with
// per-backend sampling and the anomaly monitor active in every region — and,
// in a multi-region scenario, the peering heartbeat loop running.
func (sc *Scenario) RunFor(d time.Duration) {
	sc.end = sc.sim.Now() + d
	stop := func() bool { return sc.sim.Now() > sc.end }
	for _, r := range sc.regions {
		r.gw.StartSampling(stop)
		r.monitor.Start(stop)
	}
	if sc.fed != nil {
		sc.fed.Start(stop)
	}
	sc.sim.RunUntil(sc.end)
	sc.sim.Run() // drain stragglers (completions, migrations, WAN returns)
}

// Now returns the current virtual time.
func (sc *Scenario) Now() time.Duration { return sc.sim.Now() }

// TrafficStats summarizes one service's drive results.
type TrafficStats struct {
	ByStatus map[int]*int
	// P50, P99 are filled from the service's recorded latencies after
	// RunFor completes.
	service *gateway.ServiceState
}

// TrafficPattern describes an offered-load shape for Service.Drive: an RPS
// curve, a source region and AZ, and a duration. Build one with Constant,
// Spike or RateFunc, then refine it with the chained From, FromRegion and
// For setters:
//
//	svc.Drive(canal.Constant(100).For(20 * time.Second))
//	svc.Drive(canal.Spike(50, 4000, 10*time.Second, 30*time.Second).From("az2").For(time.Minute))
//	svc.Drive(canal.Constant(100).FromRegion("eu-west").For(time.Minute))
//
// The zero source region means the scenario's first configured region; the
// zero source AZ means that region's first configured AZ. The setters are
// value receivers, so patterns are freely reusable and shareable.
type TrafficPattern struct {
	fromRegion string
	fromAZ     string
	dur        time.Duration
	rate       func(time.Duration) float64
}

// Constant is a flat rps request/s pattern.
func Constant(rps float64) TrafficPattern {
	return TrafficPattern{rate: workload.Constant(rps)}
}

// Spike offers base RPS with a surge to peak during [start, start+spike),
// measured from the moment Drive is called.
func Spike(base, peak float64, start, spike time.Duration) TrafficPattern {
	return TrafficPattern{rate: workload.Spike(base, peak, start, spike)}
}

// RateFunc wraps an arbitrary RPS curve (virtual time since Drive → RPS).
func RateFunc(rate func(time.Duration) float64) TrafficPattern {
	return TrafficPattern{rate: rate}
}

// From sets the source AZ the traffic enters through.
func (p TrafficPattern) From(az string) TrafficPattern {
	p.fromAZ = az
	return p
}

// FromRegion sets the region the traffic enters through. In a multi-region
// scenario the entering region serves locally while healthy and spills over
// the WAN when its capacity collapses.
func (p TrafficPattern) FromRegion(region string) TrafficPattern {
	p.fromRegion = region
	return p
}

// For sets how long the pattern drives load.
func (p TrafficPattern) For(dur time.Duration) TrafficPattern {
	p.dur = dur
	return p
}

// Drive offers the pattern's load to the service and returns live counters
// by HTTP status (they fill in as the scenario runs). The pattern must carry
// a rate (build it with Constant, Spike or RateFunc) and a positive duration
// (set one with For); Drive panics otherwise, since a silent no-op drive
// would invalidate the experiment — and likewise for an unknown source
// region.
func (svc *Service) Drive(p TrafficPattern) *TrafficStats {
	if p.rate == nil {
		panic("canal: Drive needs a rate; build the TrafficPattern with Constant, Spike or RateFunc")
	}
	if p.dur <= 0 {
		panic("canal: Drive needs a positive duration; set one with TrafficPattern.For")
	}
	sc := svc.sc
	from := sc.home()
	if p.fromRegion != "" {
		if from = sc.byName[p.fromRegion]; from == nil {
			panic(fmt.Sprintf("canal: Drive from unknown region %q", p.fromRegion))
		}
	}
	fromAZ := p.fromAZ
	if fromAZ == "" {
		fromAZ = from.firstAZ
	}
	st := svc.st
	if svc.fed != nil {
		st = svc.fed.State(from.name)
	}
	stats := &TrafficStats{ByStatus: map[int]*int{}, service: st}
	record := func(_ time.Duration, status int) {
		p := stats.ByStatus[status]
		if p == nil {
			p = new(int)
			stats.ByStatus[status] = p
		}
		*p++
	}
	i := int(st.ID) << 18
	end := sc.sim.Now() + p.dur
	workload.OpenLoop(sc.sim, p.rate, 10*time.Millisecond, end, func() {
		i++
		flow := cloud.SessionKey{
			SrcIP: "10.0.0.2", SrcPort: uint16(i%60000 + 1),
			DstIP: st.Addr.String(), DstPort: 80, Proto: 6,
		}
		req := &Request{Method: "GET", Path: "/", BodyBytes: 1024}
		if svc.fed != nil {
			sc.fed.Dispatch(from.name, svc.fed, fromAZ, flow, req, 1, nil, record)
			return
		}
		from.gw.Dispatch(st.ID, fromAZ, flow, req, 1, record)
	})
	return stats
}

// Count returns the tally for a status code.
func (t *TrafficStats) Count(status int) int {
	if p := t.ByStatus[status]; p != nil {
		return *p
	}
	return 0
}

// LatencyP returns the p-th latency percentile the entering region's
// registration observed so far (spilled requests are recorded by the peer
// region that served them).
func (t *TrafficStats) LatencyP(p float64) time.Duration {
	return t.service.Latency.PercentileDuration(p)
}

// Sandboxed reports whether the service has been isolated (home region).
func (svc *Service) Sandboxed() bool { return svc.st.Sandboxed }

// Backends returns the IDs of the service's backends (home region).
func (svc *Service) Backends() []string {
	out := make([]string, 0, len(svc.st.Backends))
	for _, b := range svc.st.Backends {
		out = append(out, b.ID)
	}
	return out
}

// SetSessions sets the service's live-session gauge (the signal the attack
// detector watches).
func (svc *Service) SetSessions(n int) { svc.st.Sessions = n }

// Throttle rate-limits the service at the gateway — every region's gateway
// in a multi-region scenario; rps <= 0 removes it.
func (svc *Service) Throttle(rps, burst float64) error {
	if svc.fed == nil {
		return svc.sc.home().gw.Throttle(svc.st.ID, rps, burst)
	}
	for _, r := range svc.sc.regions {
		if err := r.gw.Throttle(svc.fed.State(r.name).ID, rps, burst); err != nil {
			return err
		}
	}
	return nil
}

// faultKind discriminates the Fault constructors.
type faultKind uint8

const (
	faultNone faultKind = iota
	faultAZDown
	faultAZRecover
	faultRegionEvac
	faultRegionRestore
	faultPartition
	faultHeal
)

// Fault is one injectable failure, built with AZDown, AZRecover,
// RegionEvacuation, RegionRestore, RegionPartition or RegionHeal and
// scheduled with Scenario.Inject. The constructors are pure values: a Fault
// is freely reusable across scenarios and times.
type Fault struct {
	kind   faultKind
	az     string
	region string
	peer   string
}

// AZDown fails every VM in a zone. The zone is looked up in the scenario's
// first region unless the fault is scoped with In.
func AZDown(az string) Fault { return Fault{kind: faultAZDown, az: az} }

// AZRecover restores a zone downed by AZDown.
func AZRecover(az string) Fault { return Fault{kind: faultAZRecover, az: az} }

// In scopes an AZ fault to the named region.
func (f Fault) In(region string) Fault {
	f.region = region
	return f
}

// RegionEvacuation fails every VM in every zone of the region — the
// whole-region outage that drives WAN spillover in a federation.
func RegionEvacuation(region string) Fault { return Fault{kind: faultRegionEvac, region: region} }

// RegionRestore recovers a region evacuated by RegionEvacuation.
func RegionRestore(region string) Fault { return Fault{kind: faultRegionRestore, region: region} }

// RegionPartition severs the physical WAN link between two regions: traffic
// spilled across it is blackholed until the peering's missed-heartbeat
// timeout detects the cut. Requires a multi-region scenario.
func RegionPartition(a, b string) Fault { return Fault{kind: faultPartition, region: a, peer: b} }

// RegionHeal restores a link severed by RegionPartition; the peering
// reconnects and catches up at its next heartbeat.
func RegionHeal(a, b string) Fault { return Fault{kind: faultHeal, region: a, peer: b} }

// Inject schedules the fault at the given virtual time. The target is
// validated immediately — an unknown AZ or region, or a partition in a
// single-region scenario, errors now rather than silently no-opping
// mid-run.
func (sc *Scenario) Inject(f Fault, at time.Duration) error {
	switch f.kind {
	case faultAZDown, faultAZRecover:
		r, err := sc.faultRegion(f.region)
		if err != nil {
			return err
		}
		zone := r.cloud.AZ(f.az)
		if zone == nil {
			return fmt.Errorf("canal: unknown AZ %q in region %s", f.az, r.name)
		}
		if f.kind == faultAZDown {
			sc.sim.At(at, func() { zone.FailAZ() })
		} else {
			sc.sim.At(at, func() { zone.RecoverAZ() })
		}
	case faultRegionEvac, faultRegionRestore:
		r, err := sc.faultRegion(f.region)
		if err != nil {
			return err
		}
		if f.kind == faultRegionEvac {
			sc.sim.At(at, func() { r.cloud.FailRegion() })
		} else {
			sc.sim.At(at, func() { r.cloud.RecoverRegion() })
		}
	case faultPartition, faultHeal:
		if sc.fed == nil {
			return fmt.Errorf("canal: region partition needs a multi-region scenario")
		}
		a, b := f.region, f.peer
		if sc.byName[a] == nil || sc.byName[b] == nil {
			return fmt.Errorf("canal: unknown region in partition %q <-> %q", a, b)
		}
		if f.kind == faultPartition {
			sc.sim.At(at, func() { _ = sc.fed.Partition(a, b) })
		} else {
			sc.sim.At(at, func() { _ = sc.fed.Heal(a, b) })
		}
	default:
		return fmt.Errorf("canal: empty fault; build one with AZDown, RegionEvacuation, RegionPartition, ...")
	}
	return nil
}

// faultRegion resolves a fault's target region: the named one, or the
// scenario's first region when unscoped.
func (sc *Scenario) faultRegion(name string) (*Region, error) {
	if name == "" {
		return sc.home(), nil
	}
	if r := sc.byName[name]; r != nil {
		return r, nil
	}
	return nil, fmt.Errorf("canal: unknown region %q", name)
}

// FailAZ downs every VM in a zone at the given virtual time.
//
// Deprecated: use Inject(AZDown(az), at).
func (sc *Scenario) FailAZ(az string, at time.Duration) error {
	return sc.Inject(AZDown(az), at)
}

// RecoverAZ restores a zone at the given virtual time.
//
// Deprecated: use Inject(AZRecover(az), at).
func (sc *Scenario) RecoverAZ(az string, at time.Duration) error {
	return sc.Inject(AZRecover(az), at)
}
