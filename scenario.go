package canal

import (
	"fmt"
	"net/netip"
	"time"

	"canalmesh/internal/admission"
	"canalmesh/internal/anomaly"
	"canalmesh/internal/cloud"
	"canalmesh/internal/gateway"
	"canalmesh/internal/l7"
	"canalmesh/internal/netmodel"
	"canalmesh/internal/scaling"
	"canalmesh/internal/sim"
	"canalmesh/internal/workload"
)

// Scenario is the public facade over the discrete-event simulation: build a
// region, provision gateway backends, register tenant services, drive load,
// inject failures, and observe the mesh's availability/elasticity machinery
// — the same substrate cmd/canalbench uses to regenerate the paper.
//
// All time is virtual: a Scenario with hours of traffic runs in milliseconds
// and is fully deterministic for a given seed.
type Scenario struct {
	sim     *sim.Sim
	region  *cloud.Region
	gw      *gateway.Gateway
	planner *scaling.Planner
	monitor *anomaly.Monitor
	end     time.Duration
	firstAZ string
}

// ScenarioConfig sizes a scenario.
type ScenarioConfig struct {
	Seed            int64
	AZs             []string // default: az1, az2
	ShardSize       int      // backends per service (default 3)
	Backends        int      // regular backends, spread over AZs (default 6)
	ReplicasPerBE   int      // default 2
	CoresPerReplica int      // default 2
	Sandboxes       int      // default 1
}

// NewScenario builds a ready-to-use simulated region + gateway.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if len(cfg.AZs) == 0 {
		cfg.AZs = []string{"az1", "az2"}
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 6
	}
	if cfg.ReplicasPerBE <= 0 {
		cfg.ReplicasPerBE = 2
	}
	if cfg.CoresPerReplica <= 0 {
		cfg.CoresPerReplica = 2
	}
	if cfg.Sandboxes < 0 {
		cfg.Sandboxes = 0
	} else if cfg.Sandboxes == 0 {
		cfg.Sandboxes = 1
	}
	s := sim.New(cfg.Seed)
	region := cloud.NewRegion(s, "region-1", cfg.AZs...)
	g := gateway.New(gateway.Config{
		Sim: s, Costs: netmodel.Default(), Engine: l7.NewEngine(cfg.Seed),
		ShardSize: cfg.ShardSize, Seed: cfg.Seed,
	})
	for i := 0; i < cfg.Backends; i++ {
		az := region.AZ(cfg.AZs[i%len(cfg.AZs)])
		if _, err := g.AddBackend(az, cfg.ReplicasPerBE, cfg.CoresPerReplica, false); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Sandboxes; i++ {
		if _, err := g.AddBackend(region.AZ(cfg.AZs[0]), cfg.ReplicasPerBE, cfg.CoresPerReplica, true); err != nil {
			return nil, err
		}
	}
	sc := &Scenario{sim: s, region: region, gw: g, firstAZ: cfg.AZs[0]}
	sc.planner = scaling.NewPlanner(s, g, region, scaling.DefaultOptions())
	sc.monitor = anomaly.NewMonitor(s, g, sc.planner, anomaly.DefaultThresholds())
	return sc, nil
}

// AdmissionOptions tunes a scenario's admission layer. Zero values take the
// admission package defaults.
type AdmissionOptions struct {
	// Weights biases per-tenant fair CPU shares (default weight 1 each).
	Weights map[string]float64
	// Target / Interval tune the CoDel queue-management stage.
	Target   time.Duration
	Interval time.Duration
}

// EnableAdmission turns on the proactive overload-control layer — per-tenant
// weighted fair queues with CoDel on every gateway replica, plus per-service
// adaptive concurrency limits — so one tenant's flash crowd is shed with fast
// 429s instead of queueing behind every other tenant's traffic. Call it
// before driving load. It composes with the anomaly monitor's sandbox
// migration: admission bounds the blast radius during the tens of seconds the
// monitor needs to confirm an anomaly and migrate the offender.
func (sc *Scenario) EnableAdmission(opt AdmissionOptions) {
	sc.gw.EnableAdmission(admission.Config{
		Weights:  opt.Weights,
		Target:   opt.Target,
		Interval: opt.Interval,
	})
}

// ScenarioStats is a point-in-time snapshot of a scenario's availability and
// elasticity machinery, taken with Scenario.Stats. It replaces the former
// one-accessor-per-metric surface (AdmissionSheds, AdmissionFairness,
// ScalingOps, Interventions) with a single coherent read.
type ScenarioStats struct {
	// AdmissionSheds is the total number of requests the admission layer
	// rejected (0 when admission is disabled).
	AdmissionSheds float64
	// AdmissionFairness is the Jain fairness index over per-tenant admitted
	// request counts, in (0, 1]; 1 when admission is disabled or idle.
	AdmissionFairness float64
	// ScalingOps is the number of precise-scaling operations performed.
	ScalingOps int
	// Interventions holds human-readable records of the anomaly monitor's
	// actions, in the order they fired.
	Interventions []string
}

// Stats snapshots the scenario's admission, scaling and anomaly-intervention
// counters. Call it after RunFor; the snapshot does not update afterwards.
func (sc *Scenario) Stats() ScenarioStats {
	st := ScenarioStats{AdmissionFairness: 1}
	if m := sc.gw.AdmissionMetrics(); m != nil {
		st.AdmissionSheds = m.ShedTotal()
		st.AdmissionFairness = m.FairnessIndex()
	}
	st.ScalingOps = len(sc.planner.Events())
	for _, a := range sc.monitor.Actions() {
		st.Interventions = append(st.Interventions, fmt.Sprintf("%v %s on service %d (%s)", a.At, a.Action, a.Service, a.Reason))
	}
	return st
}

// AdmissionSheds returns the total number of requests the admission layer
// rejected (0 when admission is disabled).
//
// Deprecated: use Stats().AdmissionSheds.
func (sc *Scenario) AdmissionSheds() float64 { return sc.Stats().AdmissionSheds }

// AdmissionFairness returns the Jain fairness index over per-tenant admitted
// request counts, in (0, 1]; 1 when admission is disabled or idle.
//
// Deprecated: use Stats().AdmissionFairness.
func (sc *Scenario) AdmissionFairness() float64 { return sc.Stats().AdmissionFairness }

// Service is a handle to one registered tenant service in a scenario.
type Service struct {
	sc *Scenario
	st *gateway.ServiceState
}

// RegisterService installs a tenant service with its L7 configuration.
// Distinct tenants may reuse identical addresses (overlapping VPCs); the
// VNI keeps them apart.
func (sc *Scenario) RegisterService(tenant, name string, vni uint32, addr string, cfg ServiceConfig) (*Service, error) {
	ip, err := netip.ParseAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("canal: service address: %w", err)
	}
	st, err := sc.gw.RegisterService(tenant, name, vni, ip, 80, false, cfg)
	if err != nil {
		return nil, err
	}
	return &Service{sc: sc, st: st}, nil
}

// RunFor executes the scenario for the given virtual duration, with
// per-backend sampling and the anomaly monitor active.
func (sc *Scenario) RunFor(d time.Duration) {
	sc.end = sc.sim.Now() + d
	sc.gw.StartSampling(func() bool { return sc.sim.Now() > sc.end })
	sc.monitor.Start(func() bool { return sc.sim.Now() > sc.end })
	sc.sim.RunUntil(sc.end)
	sc.sim.Run() // drain stragglers (completions, migrations)
}

// Now returns the current virtual time.
func (sc *Scenario) Now() time.Duration { return sc.sim.Now() }

// TrafficStats summarizes one service's drive results.
type TrafficStats struct {
	ByStatus map[int]*int
	// P50, P99 are filled from the service's recorded latencies after
	// RunFor completes.
	service *gateway.ServiceState
}

// TrafficPattern describes an offered-load shape for Service.Drive: an RPS
// curve, a source AZ, and a duration. Build one with Constant, Spike or
// RateFunc, then refine it with the chained From and For setters:
//
//	svc.Drive(canal.Constant(100).For(20 * time.Second))
//	svc.Drive(canal.Spike(50, 4000, 10*time.Second, 30*time.Second).From("az2").For(time.Minute))
//
// The zero source AZ means the scenario's first configured AZ. The setters
// are value receivers, so patterns are freely reusable and shareable.
type TrafficPattern struct {
	fromAZ string
	dur    time.Duration
	rate   func(time.Duration) float64
}

// Constant is a flat rps request/s pattern.
func Constant(rps float64) TrafficPattern {
	return TrafficPattern{rate: workload.Constant(rps)}
}

// Spike offers base RPS with a surge to peak during [start, start+spike),
// measured from the moment Drive is called.
func Spike(base, peak float64, start, spike time.Duration) TrafficPattern {
	return TrafficPattern{rate: workload.Spike(base, peak, start, spike)}
}

// RateFunc wraps an arbitrary RPS curve (virtual time since Drive → RPS).
func RateFunc(rate func(time.Duration) float64) TrafficPattern {
	return TrafficPattern{rate: rate}
}

// From sets the source AZ the traffic enters through.
func (p TrafficPattern) From(az string) TrafficPattern {
	p.fromAZ = az
	return p
}

// For sets how long the pattern drives load.
func (p TrafficPattern) For(dur time.Duration) TrafficPattern {
	p.dur = dur
	return p
}

// Drive offers the pattern's load to the service and returns live counters
// by HTTP status (they fill in as the scenario runs). The pattern must carry
// a rate (build it with Constant, Spike or RateFunc) and a positive duration
// (set one with For); Drive panics otherwise, since a silent no-op drive
// would invalidate the experiment.
func (svc *Service) Drive(p TrafficPattern) *TrafficStats {
	if p.rate == nil {
		panic("canal: Drive needs a rate; build the TrafficPattern with Constant, Spike or RateFunc")
	}
	if p.dur <= 0 {
		panic("canal: Drive needs a positive duration; set one with TrafficPattern.For")
	}
	fromAZ := p.fromAZ
	if fromAZ == "" {
		fromAZ = svc.sc.firstAZ
	}
	stats := &TrafficStats{ByStatus: map[int]*int{}, service: svc.st}
	i := int(svc.st.ID) << 18
	end := svc.sc.sim.Now() + p.dur
	workload.OpenLoop(svc.sc.sim, p.rate, 10*time.Millisecond, end, func() {
		i++
		flow := cloud.SessionKey{
			SrcIP: "10.0.0.2", SrcPort: uint16(i%60000 + 1),
			DstIP: svc.st.Addr.String(), DstPort: 80, Proto: 6,
		}
		svc.sc.gw.Dispatch(svc.st.ID, fromAZ, flow, &Request{Method: "GET", Path: "/", BodyBytes: 1024}, 1,
			func(_ time.Duration, status int) {
				p := stats.ByStatus[status]
				if p == nil {
					p = new(int)
					stats.ByStatus[status] = p
				}
				*p++
			})
	})
	return stats
}

// DriveConstant offers constantRPS request/s to the service from the named
// AZ for dur.
//
// Deprecated: use Drive(Constant(constantRPS).From(fromAZ).For(dur)). This
// wrapper carries the pre-TrafficPattern Drive signature.
func (svc *Service) DriveConstant(fromAZ string, constantRPS float64, dur time.Duration) *TrafficStats {
	return svc.Drive(Constant(constantRPS).From(fromAZ).For(dur))
}

// DriveSpike offers base RPS with a surge to peak during [start, start+spike).
//
// Deprecated: use Drive(Spike(base, peak, start, spike).From(fromAZ).For(dur)).
func (svc *Service) DriveSpike(fromAZ string, base, peak float64, start, spike, dur time.Duration) *TrafficStats {
	return svc.Drive(Spike(base, peak, start, spike).From(fromAZ).For(dur))
}

// DriveRate drives an arbitrary RPS curve.
//
// Deprecated: use Drive(RateFunc(rate).From(fromAZ).For(dur)).
func (svc *Service) DriveRate(fromAZ string, rate func(time.Duration) float64, dur time.Duration) *TrafficStats {
	return svc.Drive(RateFunc(rate).From(fromAZ).For(dur))
}

// Count returns the tally for a status code.
func (t *TrafficStats) Count(status int) int {
	if p := t.ByStatus[status]; p != nil {
		return *p
	}
	return 0
}

// LatencyP returns the service's p-th latency percentile observed so far.
func (t *TrafficStats) LatencyP(p float64) time.Duration {
	return t.service.Latency.PercentileDuration(p)
}

// Sandboxed reports whether the service has been isolated.
func (svc *Service) Sandboxed() bool { return svc.st.Sandboxed }

// Backends returns the IDs of the service's backends.
func (svc *Service) Backends() []string {
	out := make([]string, 0, len(svc.st.Backends))
	for _, b := range svc.st.Backends {
		out = append(out, b.ID)
	}
	return out
}

// SetSessions sets the service's live-session gauge (the signal the attack
// detector watches).
func (svc *Service) SetSessions(n int) { svc.st.Sessions = n }

// Throttle rate-limits the service at the gateway; rps <= 0 removes it.
func (svc *Service) Throttle(rps, burst float64) error {
	return svc.sc.gw.Throttle(svc.st.ID, rps, burst)
}

// FailAZ downs every VM in a zone at the given virtual time.
func (sc *Scenario) FailAZ(az string, at time.Duration) error {
	zone := sc.region.AZ(az)
	if zone == nil {
		return fmt.Errorf("canal: unknown AZ %q", az)
	}
	sc.sim.At(at, func() { zone.FailAZ() })
	return nil
}

// RecoverAZ restores a zone at the given virtual time.
func (sc *Scenario) RecoverAZ(az string, at time.Duration) error {
	zone := sc.region.AZ(az)
	if zone == nil {
		return fmt.Errorf("canal: unknown AZ %q", az)
	}
	sc.sim.At(at, func() { zone.RecoverAZ() })
	return nil
}

// ScalingOps returns the number of precise-scaling operations performed.
//
// Deprecated: use Stats().ScalingOps.
func (sc *Scenario) ScalingOps() int { return sc.Stats().ScalingOps }

// Interventions returns human-readable records of the monitor's actions.
//
// Deprecated: use Stats().Interventions.
func (sc *Scenario) Interventions() []string { return sc.Stats().Interventions }
