package canal_test

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	canal "canalmesh"
)

// Example runs the complete real-mode data path: a multi-tenant gateway, a
// tenant trust domain, one upstream, and a signed request from a NodeAgent.
func Example() {
	// The centralized mesh gateway (shared by all tenants).
	gw := canal.NewGatewayServer(1)
	gw.RequireAuth = true
	gwSrv := httptest.NewServer(gw)
	defer gwSrv.Close()

	// One tenant with its own CA.
	ca, err := canal.NewCA("acme-ca")
	if err != nil {
		log.Fatal(err)
	}
	gw.RegisterTenant("acme", ca)

	// The tenant's service and upstream pool.
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello from v1")
	}))
	defer upstream.Close()
	if err := gw.ConfigureService("acme", canal.ServiceConfig{
		Service:       "web",
		DefaultSubset: "v1",
	}, map[string][]string{"v1": {upstream.URL}}); err != nil {
		log.Fatal(err)
	}

	// A workload identity and its on-node agent: no sidecar anywhere.
	id, err := ca.IssueIdentity("spiffe://acme/ns/default/sa/frontend")
	if err != nil {
		log.Fatal(err)
	}
	agent := canal.NewNodeAgent("acme", id, gwSrv.URL)
	resp, err := agent.Get("web", "/hello")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("status:", resp.StatusCode)
	// Output: status: 200
}

// ExampleNewScenario drives the simulated cloud: a region with gateway
// backends across two AZs, a tenant service, an AZ outage, and hierarchical
// failover keeping the service up.
func ExampleNewScenario() {
	sc, err := canal.NewScenario(canal.ScenarioConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	svc, err := sc.RegisterService("acme", "web", 100, "192.168.0.10",
		canal.ServiceConfig{DefaultSubset: "v1"})
	if err != nil {
		log.Fatal(err)
	}
	stats := svc.Drive(canal.Constant(100).From("az1").For(20 * time.Second))
	if err := sc.Inject(canal.AZDown("az1"), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := sc.Inject(canal.AZRecover("az1"), 15*time.Second); err != nil {
		log.Fatal(err)
	}
	sc.RunFor(22 * time.Second)
	fmt.Println("unavailable responses during the AZ outage:", stats.Count(503))
	// Output: unavailable responses during the AZ outage: 0
}
