package canal

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"canalmesh/internal/admission"
)

// TestGatewayAdmissionShedsOverConcurrencyLimit pins the gateway-wide limit
// at 2 slots, parks two requests on a blocking upstream, and checks that a
// third is refused with a typed 429 and a Retry-After hint while the parked
// pair still completes.
func TestGatewayAdmissionShedsOverConcurrencyLimit(t *testing.T) {
	arrived := make(chan struct{}, 2)
	unblock := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrived <- struct{}{}
		<-unblock
	}))
	defer slow.Close()

	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {slow.URL}}, false)
	gw.EnableAdmission(admission.Config{
		Limiter: admission.LimiterConfig{InitialLimit: 2, MinLimit: 2, MaxLimit: 2},
	})
	if gw.AdmissionMetrics() == nil {
		t.Fatal("admission metrics should exist once enabled")
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := agent.Get("web", "/")
			if err != nil {
				t.Errorf("parked request: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("parked request status = %d", resp.StatusCode)
			}
		}()
	}
	// Both slots held: the gateway is at its concurrency limit.
	<-arrived
	<-arrived

	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After hint")
	}
	close(unblock)
	wg.Wait()

	if got := gw.AdmissionMetrics().ShedTotal(); got < 1 {
		t.Errorf("shed total = %v, want >= 1", got)
	}
}

// TestGatewayAdmissionRetryBudget sends a stream of retry-marked requests:
// the budget admits roughly its token capacity, then sheds the rest, while
// fresh (non-retry) traffic keeps flowing.
func TestGatewayAdmissionRetryBudget(t *testing.T) {
	fast := echoServer("v1")
	defer fast.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {fast.URL}}, false)
	gw.EnableAdmission(admission.Config{})

	retryHeaders := map[string]string{HeaderRetry: "1"}
	var ok200, shed429 int
	for i := 0; i < 50; i++ {
		resp, err := agent.Do("GET", "web", "/", nil, retryHeaders)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Fatalf("retry %d: status %d", i, resp.StatusCode)
		}
	}
	if ok200 == 0 {
		t.Fatal("every retry was shed; budget should start full")
	}
	if shed429 == 0 {
		t.Fatal("50 consecutive retries never exhausted the retry budget")
	}

	// A non-retry request is untouched by the retry budget.
	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh request status = %d after retry budget exhausted", resp.StatusCode)
	}
}
