package canal

import (
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer returns an httptest server that reports its name and the
// request path/subset.
func echoServer(name string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%s|%s|%s", name, r.URL.Path, r.Header.Get(HeaderSubset))
	}))
}

// testMesh wires a gateway with one tenant and one service with v1/v2
// subsets, returning the gateway server and an authenticated agent.
func testMesh(t *testing.T, cfg ServiceConfig, pools map[string][]string, requireAuth bool) (*httptest.Server, *NodeAgent, *GatewayServer) {
	t.Helper()
	gw := NewGatewayServer(1)
	gw.RequireAuth = requireAuth
	ca, err := NewCA("tenant1-ca")
	if err != nil {
		t.Fatal(err)
	}
	gw.RegisterTenant("tenant1", ca)
	if err := gw.ConfigureService("tenant1", cfg, pools); err != nil {
		t.Fatal(err)
	}
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)
	id, err := ca.IssueIdentity("spiffe://tenant1/ns/default/sa/client")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewNodeAgent("tenant1", id, gwSrv.URL)
	return gwSrv, agent, gw
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGatewayRoutesToDefaultSubset(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	_, agent, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, false)
	resp, err := agent.Get("web", "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := readBody(t, resp)
	if body != "v1|/hello|v1" {
		t.Errorf("body = %q", body)
	}
}

func TestGatewayCanarySplitOverTCP(t *testing.T) {
	var v1n, v2n atomic.Int64
	v1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { v1n.Add(1) }))
	v2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { v2n.Add(1) }))
	defer v1.Close()
	defer v2.Close()
	cfg := ServiceConfig{
		Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{
			Name:   "canary",
			Splits: []Split{{Subset: "v1", Weight: 80}, {Subset: "v2", Weight: 20}},
		}},
	}
	_, agent, _ := testMesh(t, cfg, map[string][]string{"v1": {v1.URL}, "v2": {v2.URL}}, false)
	for i := 0; i < 300; i++ {
		resp, err := agent.Get("web", "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	frac := float64(v2n.Load()) / 300
	if frac < 0.10 || frac > 0.33 {
		t.Errorf("canary fraction = %.2f, want ~0.20", frac)
	}
	if v1n.Load()+v2n.Load() != 300 {
		t.Errorf("total = %d", v1n.Load()+v2n.Load())
	}
}

func TestGatewayHeaderRoutingAndRewrite(t *testing.T) {
	v1 := echoServer("v1")
	beta := echoServer("beta")
	defer v1.Close()
	defer beta.Close()
	cfg := ServiceConfig{
		Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{
			Name:        "beta-users",
			Match:       RouteMatch{Headers: []KVMatch{{Name: "X-User-Group", Match: Exact("beta")}}},
			Splits:      []Split{{Subset: "beta", Weight: 1}},
			PathRewrite: "/v2/home",
		}},
	}
	_, agent, _ := testMesh(t, cfg, map[string][]string{"v1": {v1.URL}, "beta": {beta.URL}}, false)

	resp, err := agent.Do(http.MethodGet, "web", "/home", nil, map[string]string{"X-User-Group": "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); body != "beta|/v2/home|beta" {
		t.Errorf("beta body = %q", body)
	}
	resp2, err := agent.Get("web", "/home")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp2); body != "v1|/home|v1" {
		t.Errorf("default body = %q", body)
	}
}

func TestGatewayZeroTrustAuth(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	gwSrv, agent, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, true)

	// Signed request passes.
	resp, err := agent.Get("web", "/secure")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("signed request status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unsigned request is rejected.
	req, _ := http.NewRequest(http.MethodGet, gwSrv.URL+"/secure", nil)
	req.Header.Set(HeaderTenant, "tenant1")
	req.Header.Set(HeaderService, "web")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Errorf("unsigned request status = %d, want 403", resp2.StatusCode)
	}
}

func TestGatewayRejectsForeignIdentity(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	gwSrv, _, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, true)

	// An identity from a different CA must be rejected even with a valid
	// signature structure.
	foreignCA, err := NewCA("attacker-ca")
	if err != nil {
		t.Fatal(err)
	}
	foreignID, err := foreignCA.IssueIdentity("spiffe://tenant1/sa/evil")
	if err != nil {
		t.Fatal(err)
	}
	agent := NewNodeAgent("tenant1", foreignID, gwSrv.URL)
	resp, err := agent.Get("web", "/secure")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("foreign identity status = %d, want 403", resp.StatusCode)
	}
}

func TestGatewayRejectsStaleTimestamp(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	gwSrv, agent, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, true)
	// Hand-craft a request with an expired timestamp but valid signature.
	ts := strconv.FormatInt(time.Now().Add(-time.Hour).Unix(), 10) //canal:allow simdeterminism deliberately stale real-clock timestamp exercises the skew rejection
	req, _ := http.NewRequest(http.MethodGet, gwSrv.URL+"/x", nil)
	req.Header.Set(HeaderTenant, "tenant1")
	req.Header.Set(HeaderService, "web")
	req.Header.Set(HeaderTimestamp, ts)
	req.Header.Set(HeaderCert, base64.StdEncoding.EncodeToString(agent.Identity.CertDER))
	payload := signingPayload("tenant1", agent.Identity.ID, "GET", "/x", ts)
	sig, err := signASN1(agent.Identity, payload)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderSignature, base64.StdEncoding.EncodeToString(sig))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("stale request status = %d, want 403 (replay window)", resp.StatusCode)
	}
}

func TestGatewayAuthzBySourceIdentity(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	cfg := ServiceConfig{
		Service: "pay", DefaultSubset: "v1",
		Authz: []AuthzRule{
			{Name: "allow-client", Action: AuthzAllow, SourceService: Exact("client")},
		},
	}
	gwSrv, agent, gw := testMesh(t, cfg, map[string][]string{"v1": {v1.URL}}, true)
	// The issued identity ends in /sa/client -> source "client": allowed.
	resp, err := agent.Get("pay", "/charge")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("client status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// A different verified identity is denied.
	ca2 := gw.cas["tenant1"]
	intruder, err := ca2.IssueIdentity("spiffe://tenant1/ns/default/sa/intruder")
	if err != nil {
		t.Fatal(err)
	}
	agent2 := NewNodeAgent("tenant1", intruder, gwSrv.URL)
	resp2, err := agent2.Get("pay", "/charge")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Errorf("intruder status = %d, want 403", resp2.StatusCode)
	}
}

func TestGatewayThrottleLifecycle(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, false)
	if err := gw.SetServiceRate("tenant1", "web", 0.0001, 2); err != nil {
		t.Fatal(err)
	}
	codes := map[int]int{}
	for i := 0; i < 10; i++ {
		resp, err := agent.Get("web", "/")
		if err != nil {
			t.Fatal(err)
		}
		codes[resp.StatusCode]++
		resp.Body.Close()
	}
	if codes[http.StatusTooManyRequests] < 7 {
		t.Errorf("throttle should reject most requests: %v", codes)
	}
	gw.ClearServiceRate("tenant1", "web")
	resp, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("after clearing, status = %d", resp.StatusCode)
	}
}

func TestGatewayTenantIsolation(t *testing.T) {
	// Two tenants each with a service named "web": requests are routed to
	// their own tenant's upstreams.
	gw := NewGatewayServer(1)
	gwSrv := httptest.NewServer(gw)
	defer gwSrv.Close()
	var agents []*NodeAgent
	var servers []*httptest.Server
	for i, tenant := range []string{"t1", "t2"} {
		srv := echoServer(tenant + "-backend")
		servers = append(servers, srv)
		ca, err := NewCA(tenant + "-ca")
		if err != nil {
			t.Fatal(err)
		}
		gw.RegisterTenant(tenant, ca)
		if err := gw.ConfigureService(tenant, ServiceConfig{Service: "web", DefaultSubset: "v1"},
			map[string][]string{"v1": {srv.URL}}); err != nil {
			t.Fatal(err)
		}
		id, err := ca.IssueIdentity(fmt.Sprintf("spiffe://%s/sa/app%d", tenant, i))
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, NewNodeAgent(tenant, id, gwSrv.URL))
	}
	defer servers[0].Close()
	defer servers[1].Close()
	for i, tenant := range []string{"t1", "t2"} {
		resp, err := agents[i].Get("web", "/")
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		want := tenant + "-backend|/|v1"
		if body != want {
			t.Errorf("tenant %s got %q, want %q", tenant, body, want)
		}
	}
}

func TestGatewayMissingHeaders(t *testing.T) {
	gw := NewGatewayServer(1)
	srv := httptest.NewServer(gw)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestGatewayUnknownServiceAndPool(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	_, agent, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "missing-pool"},
		map[string][]string{"v1": {v1.URL}}, false)
	// Unknown service -> 503 from routing.
	resp, err := agent.Get("ghost", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unknown service status = %d", resp.StatusCode)
	}
	// Known service, but the default subset has no upstreams -> 503.
	resp2, err := agent.Get("web", "/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty pool status = %d", resp2.StatusCode)
	}
}

func TestGatewayAccessLogRecords(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	_, agent, gw := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {v1.URL}}, false)
	resp, err := agent.Get("web", "/logged")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	entries := gw.AccessLog().Entries()
	if len(entries) == 0 {
		t.Fatal("no access log entries")
	}
	e := entries[len(entries)-1]
	if e.Path != "/logged" || e.Tenant != "tenant1" || e.Status != 200 {
		t.Errorf("entry = %+v", e)
	}
}

func TestGatewayBadUpstreamURL(t *testing.T) {
	gw := NewGatewayServer(1)
	err := gw.ConfigureService("t1", ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {"://bad"}})
	if err == nil {
		t.Error("bad upstream URL should fail configuration")
	}
}

func TestGatewayRoundRobinAcrossPool(t *testing.T) {
	var an, bn atomic.Int64
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { an.Add(1) }))
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { bn.Add(1) }))
	defer a.Close()
	defer b.Close()
	_, agent, _ := testMesh(t, ServiceConfig{Service: "web", DefaultSubset: "v1"},
		map[string][]string{"v1": {a.URL, b.URL}}, false)
	for i := 0; i < 10; i++ {
		resp, err := agent.Get("web", "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if an.Load() != 5 || bn.Load() != 5 {
		t.Errorf("round robin uneven: a=%d b=%d", an.Load(), bn.Load())
	}
}

func TestGatewayHeaderMutation(t *testing.T) {
	var gotInject, gotSecret string
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotInject = r.Header.Get("X-Injected")
		gotSecret = r.Header.Get("X-Client-Secret")
	}))
	defer upstream.Close()
	cfg := ServiceConfig{
		Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{
			Name:          "mutate",
			SetHeaders:    map[string]string{"X-Injected": "by-gateway"},
			RemoveHeaders: []string{"X-Client-Secret"},
		}},
	}
	_, agent, _ := testMesh(t, cfg, map[string][]string{"v1": {upstream.URL}}, false)
	resp, err := agent.Do(http.MethodGet, "web", "/", nil, map[string]string{"X-Client-Secret": "leak-me"})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotInject != "by-gateway" {
		t.Errorf("X-Injected = %q, want set by gateway", gotInject)
	}
	if gotSecret != "" {
		t.Errorf("X-Client-Secret = %q, want stripped", gotSecret)
	}
}

func TestGatewayConcurrentLoad(t *testing.T) {
	v1 := echoServer("v1")
	defer v1.Close()
	cfg := ServiceConfig{
		Service: "web", DefaultSubset: "v1",
		Rules: []Rule{{
			Name:   "split",
			Splits: []Split{{Subset: "v1", Weight: 1}},
		}},
	}
	_, agent, gw := testMesh(t, cfg, map[string][]string{"v1": {v1.URL}}, true)
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := agent.Get("web", "/load")
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode == 200 {
					okCount.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	// Concurrent reconfiguration while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := gw.ConfigureService("tenant1", cfg, map[string][]string{"v1": {v1.URL}}); err != nil {
				t.Error(err)
			}
			_ = gw.SetServiceRate("tenant1", "web", 1e9, 1e9)
			gw.ClearServiceRate("tenant1", "web")
		}
	}()
	wg.Wait()
	if okCount.Load() != 16*25 {
		t.Errorf("ok = %d of %d under concurrent load+reconfig", okCount.Load(), 16*25)
	}
}
